(* Tests for the cost-based optimizer: every named rule (the Rewrite laws,
   the CV93 set-only pair, and the optimizer families) fires on a crafted
   witness; optimized plans are bit-identical to the originals on both
   engines across generated queries; budget verdicts commute with
   planning; and an armed [opt.rewrite] fault degrades the planner without
   ever changing results. *)

open Balg

let env_spec = [ ("R", 1); ("S", 2) ]
let tenv = Typecheck.env_of_list (Baggen.Genexpr.env_types env_spec)
let value = Alcotest.testable Value.pp Value.equal
let eval_on inst e = Eval.eval (Eval.env_of_list inst) e

let equivalent_bag ?(trials = 25) rng e1 e2 =
  List.for_all
    (fun _ ->
      let inst = Baggen.Genexpr.instance rng env_spec in
      Value.equal (eval_on inst e1) (eval_on inst e2))
    (List.init trials Fun.id)

(* --- rule witnesses --------------------------------------------------------

   One crafted expression per named rule, asserting the rule's [applies]
   really fires on it.  scripts/lint.sh greps every rule name against this
   file (and test_rewrite.ml): a rule added without a witness fails CI. *)

let all_rules = Rewrite.sound_rules @ Rewrite.set_only_rules @ Opt.rules

let rule_named n =
  match List.find_opt (fun r -> String.equal r.Rewrite.name n) all_rules with
  | Some r -> r
  | None -> Alcotest.failf "no rule named %s" n

let r = Expr.Var "R"
let s = Expr.Var "S"
let emp = Expr.empty (Ty.relation 1)
let p i v = Expr.Proj (i, Expr.Var v)

(* (name, candidate orientations): the rule must fire on at least one; the
   AC commutation rules only fire on the non-canonical orientation, so
   those witnesses offer both orders. *)
let witnesses =
  [
    ("empty-units", [ Expr.UnionAdd (r, emp) ]);
    ("idempotence", [ Expr.Inter (r, r) ]);
    ("self-difference", [ Expr.Diff (r, r) ]);
    ("destroy-sing", [ Expr.Destroy (Expr.Sing r) ]);
    ("unnest-nest", [ Expr.Unnest (2, Expr.Nest ([ 1 ], s)) ]);
    ("map-identity", [ Expr.Map ("x", Expr.Var "x", r) ]);
    ( "map-fusion",
      [
        Expr.Map
          ("x", Expr.Tuple [ p 1 "x" ], Expr.Map ("y", Expr.Tuple [ p 1 "y" ], r));
      ] );
    ( "select-pushdown",
      [ Expr.Select ("x", p 1 "x", Expr.atom "a", Expr.Product (r, s)) ] );
    ("assoc-union-add", [ Expr.UnionAdd (Expr.UnionAdd (r, r), r) ]);
    ( "comm-union-add",
      [ Expr.UnionAdd (r, Expr.Dedup r); Expr.UnionAdd (Expr.Dedup r, r) ] );
    ( "comm-union-max",
      [ Expr.UnionMax (r, Expr.Dedup r); Expr.UnionMax (Expr.Dedup r, r) ] );
    ( "comm-inter",
      [ Expr.Inter (r, Expr.Dedup r); Expr.Inter (Expr.Dedup r, r) ] );
    ( "self-product-projection (set-only)",
      [ Expr.Map ("x", Expr.Tuple [ p 1 "x" ], Expr.Product (r, r)) ] );
    ("dedup-elimination (set-only)", [ Expr.Dedup r ]);
    ( "join-extract",
      [ Expr.Select ("x", p 1 "x", p 2 "x", Expr.Product (r, s)) ] );
    ( "select-through-proj",
      [
        Expr.Select
          ( "q",
            p 1 "q",
            Expr.atom "a",
            Expr.Map ("y", Expr.Tuple [ p 2 "y" ], s) );
      ] );
    ( "prune-map-product",
      [ Expr.Map ("x", Expr.Tuple [ p 1 "x" ], Expr.Product (r, s)) ] );
    ( "prune-nest-keys",
      [ Expr.Map ("x", Expr.Tuple [ p 1 "x" ], Expr.Nest ([ 1 ], s)) ] );
    ( "ones-pushdown",
      [
        Expr.Map
          ( "y",
            Expr.Tuple [ Expr.atom "a" ],
            Expr.Map ("z", Expr.Tuple [ p 1 "z"; p 1 "z" ], r) );
      ] );
  ]

let fires name e =
  match (rule_named name).Rewrite.applies tenv e with
  | Some e' -> Some e'
  | None -> None

let test_rule_witnesses () =
  List.iter
    (fun (name, cands) ->
      if not (List.exists (fun e -> fires name e <> None) cands) then
        Alcotest.failf "rule %s did not fire on its witness" name)
    witnesses

(* Every sound rule's witness rewrite must preserve bag semantics on random
   instances — the set-only pair is excluded (that unsoundness is the CV93
   point, tested in test_rewrite.ml). *)
let test_witness_rewrites_sound () =
  let rng = Random.State.make [| 41 |] in
  List.iter
    (fun (name, cands) ->
      if
        not
          (String.length name > 10
          && String.sub name (String.length name - 10) 10 = "(set-only)")
      then
        List.iter
          (fun e ->
            match fires name e with
            | None -> ()
            | Some e' ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s witness rewrite is bag-equivalent" name)
                  true
                  (equivalent_bag ~trials:12 rng e e'))
          cands)
    witnesses

(* --- cost-mode planning on crafted plans ----------------------------------- *)

let selfjoin_q = Expr.Select ("x", p 1 "x", p 2 "x", Expr.Product (r, s))

let test_cost_extracts_join () =
  let e', rep = Opt.optimize ~engine:Veval.Tree Opt.Cost tenv selfjoin_q in
  let rec has_join e =
    match e with
    | Expr.Join _ -> true
    | _ -> List.exists has_join (Expr.children e)
  in
  Alcotest.(check bool) "join extracted" true (has_join e');
  Alcotest.(check bool) "cost strictly decreased" true
    (rep.Opt.r_output_cost < rep.Opt.r_input_cost);
  Alcotest.(check bool) "decision log non-empty" true
    (rep.Opt.r_decisions <> []);
  let rng = Random.State.make [| 43 |] in
  Alcotest.(check bool) "join plan is bag-equivalent" true
    (equivalent_bag rng selfjoin_q e')

let test_off_is_identity () =
  let e', rep = Opt.optimize Opt.Off tenv selfjoin_q in
  Alcotest.(check bool) "off leaves the plan alone" true
    (Rewrite.expr_compare e' selfjoin_q = 0);
  Alcotest.(check bool) "no decisions in off mode" true (rep.Opt.r_decisions = [])

(* The miscost knob: with the objective inverted only cost-increasing
   rewrites are acceptable, and the planner proposes none of those — so the
   plan ships unoptimized.  This is what the bench gate's self-test relies
   on to prove a miscosted planner trips the gate. *)
let test_invert_cost_ships_unoptimized () =
  Opt.invert_cost := true;
  Fun.protect
    ~finally:(fun () -> Opt.invert_cost := false)
    (fun () ->
      let e', _ = Opt.optimize Opt.Cost tenv selfjoin_q in
      Alcotest.(check bool) "inverted objective accepts nothing" true
        (Rewrite.expr_compare e' selfjoin_q = 0))

(* --- calibration feeds the cost model -------------------------------------

   An absurd measured correction factor for joins makes the extracted
   join plan look catastrophically expensive, so cost mode keeps the
   select-over-product shape it would otherwise rewrite away: the
   calibration file changed a plan choice.  Both plans must stay
   bit-identical on random instances — calibration only moves the
   numbers the cost model reads, never the semantics. *)
let test_calibration_changes_plan_not_results () =
  let rec has_join e =
    match e with
    | Expr.Join _ -> true
    | _ -> List.exists has_join (Expr.children e)
  in
  let plain = Opt.prepare ~engine:Veval.Tree Opt.Cost tenv selfjoin_q in
  let calibrated =
    Calib.set_current
      (Some (Calib.of_observations [ ("join", 1, 1_000_000_000) ]));
    Fun.protect
      ~finally:(fun () -> Calib.set_current None)
      (fun () -> Opt.prepare ~engine:Veval.Tree Opt.Cost tenv selfjoin_q)
  in
  Alcotest.(check bool) "uncalibrated plan extracts the join" true
    (has_join plain);
  Alcotest.(check bool) "calibrated plan keeps the select" false
    (has_join calibrated);
  let rng = Random.State.make [| 47 |] in
  Alcotest.(check bool) "the two plans agree bit for bit" true
    (equivalent_bag rng plain calibrated)

let test_mode_parsing () =
  Alcotest.(check bool) "cost parses" true (Opt.mode_of_string "cost" = Some Opt.Cost);
  Alcotest.(check bool) "rules parses" true (Opt.mode_of_string "Rules" = Some Opt.Rules);
  Alcotest.(check bool) "off parses" true (Opt.mode_of_string " off " = Some Opt.Off);
  Alcotest.(check bool) "junk rejected" true (Opt.mode_of_string "fast" = None)

(* --- differential: optimized plans are bit-identical -------------------- *)

(* Tight materialisation guards keep the generated-query sweeps fast: a
   nested query that would blow past these bounds costs a guard trip, not
   minutes of powerset construction. *)
let small_config =
  { Eval.default_config with Eval.max_support = 20_000; max_count_digits = 120 }

let eval_with engine inst e =
  Veval.eval_engine engine ~config:small_config (Eval.env_of_list inst) e

(* Nested queries can legitimately exhaust the default materialisation
   guards (powerset over powerset), and optimization changes how much an
   expression materialises — so a guard trip on either side is tolerated;
   only two finished runs are compared, bit for bit. *)
let guarded engine inst e =
  match eval_with engine inst e with
  | v -> Some v
  | exception Eval.Resource_limit _ -> None

let prop_opt_differential engine engine_name gen gen_name count =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "cost-optimized == original (%s, %s)" engine_name
         gen_name)
    ~count
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = gen rng env_spec 4 (1 + Random.State.int rng 2) in
      let e' = Opt.prepare ~engine Opt.Cost tenv e in
      List.for_all
        (fun _ ->
          let inst = Baggen.Genexpr.instance rng env_spec in
          match (guarded engine inst e, guarded engine inst e') with
          | Some v, Some v' -> Value.equal v v' && Value.hash v = Value.hash v'
          | None, _ | _, None -> true)
        (List.init 6 Fun.id))

let prop_tree_flat =
  prop_opt_differential Veval.Tree "tree"
    (Baggen.Genexpr.flat ?allow_diff:None ?allow_dedup:None)
    "flat" 150

let prop_vec_flat =
  prop_opt_differential Veval.Vec "vec"
    (Baggen.Genexpr.flat ?allow_diff:None ?allow_dedup:None)
    "flat" 150

let prop_tree_nested =
  prop_opt_differential Veval.Tree "tree" Baggen.Genexpr.nested "nested" 100

let prop_vec_nested =
  prop_opt_differential Veval.Vec "vec" Baggen.Genexpr.nested "nested" 100

(* Tight-budget differential: planning must commute with governed
   evaluation — when both runs finish, the values agree; an exhaustion
   verdict on either side is tolerated (optimization legitimately changes
   how much work a query needs) but no raw exception may escape. *)
let tight_limits =
  {
    Budget.default with
    Budget.fuel = 50_000;
    max_support = 400;
    max_size = 20_000;
  }

let prop_budget_verdicts =
  QCheck.Test.make ~name:"cost-optimized commutes with governed eval"
    ~count:100
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.flat rng env_spec 4 (1 + Random.State.int rng 2) in
      let e' = Opt.prepare Opt.Cost tenv e in
      List.for_all
        (fun _ ->
          let inst = Baggen.Genexpr.instance rng env_spec in
          let run q = Eval.run ~limits:tight_limits (Eval.env_of_list inst) q in
          match (run e, run e') with
          | Ok v, Ok v' -> Value.equal v v'
          | Error _, _ | _, Error _ -> true)
        (List.init 8 Fun.id))

(* --- the opt.rewrite fault site -------------------------------------------- *)

let test_fault_degrades_gracefully () =
  (* always-firing: the very first candidate aborts planning, the input
     ships untouched and the report says so *)
  Fault.with_faults ~seed:2 "opt.rewrite:always" (fun () ->
      let e', rep = Opt.optimize Opt.Cost tenv selfjoin_q in
      Alcotest.(check bool) "report flags the degradation" true
        rep.Opt.r_faulted;
      Alcotest.(check bool) "plan ships as-is" true
        (Rewrite.expr_compare e' selfjoin_q = 0));
  Alcotest.(check bool) "disarmed afterwards" false (Fault.armed ())

let test_fault_midway_still_correct () =
  (* a hit partway through planning abandons the remaining rewrites; the
     partial plan must still be bit-identical to the original on both
     engines *)
  let q =
    Expr.Map
      ( "z",
        Expr.Tuple [ p 1 "z" ],
        Expr.Select ("x", p 1 "x", p 2 "x", Expr.Product (r, s)) )
  in
  List.iter
    (fun n ->
      let partial =
        Fault.with_faults ~seed:3 (Printf.sprintf "opt.rewrite:n=%d" n)
          (fun () -> Opt.prepare Opt.Cost tenv q)
      in
      let rng = Random.State.make [| 47 + n |] in
      List.iter
        (fun _ ->
          let inst = Baggen.Genexpr.instance rng env_spec in
          List.iter
            (fun engine ->
              Alcotest.check value
                (Printf.sprintf "partial plan (fault on hit %d) agrees" n)
                (eval_with engine inst q)
                (eval_with engine inst partial))
            [ Veval.Tree; Veval.Vec ])
        (List.init 8 Fun.id))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "opt"
    [
      ( "witnesses",
        [
          Alcotest.test_case "every named rule fires" `Quick test_rule_witnesses;
          Alcotest.test_case "sound witnesses preserve semantics" `Quick
            test_witness_rewrites_sound;
        ] );
      ( "planning",
        [
          Alcotest.test_case "cost mode extracts joins" `Quick
            test_cost_extracts_join;
          Alcotest.test_case "off mode is the identity" `Quick
            test_off_is_identity;
          Alcotest.test_case "inverted objective ships unoptimized" `Quick
            test_invert_cost_ships_unoptimized;
          Alcotest.test_case "mode parsing" `Quick test_mode_parsing;
          Alcotest.test_case "calibration changes plans, not results" `Quick
            test_calibration_changes_plan_not_results;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_tree_flat;
          QCheck_alcotest.to_alcotest prop_vec_flat;
          QCheck_alcotest.to_alcotest prop_tree_nested;
          QCheck_alcotest.to_alcotest prop_vec_nested;
          QCheck_alcotest.to_alcotest prop_budget_verdicts;
        ] );
      ( "faults",
        [
          Alcotest.test_case "always-firing fault ships the input" `Quick
            test_fault_degrades_gracefully;
          Alcotest.test_case "mid-planning fault stays bit-identical" `Quick
            test_fault_midway_still_correct;
        ] );
    ]
