(* Tests for the surface language: lexing, parsing, printing roundtrips, and
   the .bagdb loader. *)

open Balg
module Lexer = Baglang.Lexer
module Parser = Baglang.Parser
module Bagdb = Baglang.Bagdb

let value = Alcotest.testable Value.pp Value.equal
let ty = Alcotest.testable Ty.pp Ty.equal

(* --- lexer ---------------------------------------------------------------- *)

let test_lexer_basics () =
  let toks = List.map fst (Lexer.tokenize "{{ <'a, 'b>:3 }} ++ R.2") in
  Alcotest.(check int) "token count (incl. EOF)" 14 (List.length toks);
  Alcotest.(check bool) "starts with LBAG" true (List.hd toks = Lexer.LBAG)

let test_lexer_comments () =
  let toks = Lexer.tokenize "R # everything here is ignored ++ S\nS" in
  Alcotest.(check int) "comment swallowed" 3 (List.length toks)

let test_lexer_operators () =
  let toks = List.map fst (Lexer.tokenize "a ++ b -- c /\\ d \\/ e -> f == g") in
  Alcotest.(check bool) "all operators recognised" true
    (List.mem Lexer.PLUSPLUS toks && List.mem Lexer.MINUSMINUS toks
    && List.mem Lexer.WEDGE toks && List.mem Lexer.VEE toks
    && List.mem Lexer.ARROW toks && List.mem Lexer.EQEQ toks)

let test_lexer_errors () =
  (match Lexer.tokenize "a ? b" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected Lex_error");
  match Lexer.tokenize "' " with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected Lex_error on empty atom"

(* --- parsing types and values --------------------------------------------- *)

let test_parse_ty () =
  Alcotest.check ty "atom" Ty.Atom (Parser.ty_of_string "U");
  Alcotest.check ty "relation" (Ty.relation 2) (Parser.ty_of_string "{{<U, U>}}");
  Alcotest.check ty "nested" (Ty.Bag (Ty.Bag Ty.Atom))
    (Parser.ty_of_string "{{ {{ U }} }}")

let test_parse_value () =
  Alcotest.check value "atom" (Value.atom "a") (Parser.value_of_string "'a");
  Alcotest.check value "bag with counts"
    (Value.bag_of_assoc
       [ (Value.tuple [ Value.atom "a"; Value.atom "b" ], Bignat.of_int 3) ])
    (Parser.value_of_string "{{ <'a, 'b>:3 }}");
  Alcotest.check value "coalescing"
    (Value.bag_of_assoc [ (Value.atom "x", Bignat.of_int 5) ])
    (Parser.value_of_string "{{ 'x:2, 'x:3 }}");
  Alcotest.check value "big count"
    (Value.replicate (Bignat.of_string "123456789012345678901") (Value.atom "x"))
    (Parser.value_of_string "{{ 'x:123456789012345678901 }}")

(* --- parsing expressions ---------------------------------------------------- *)

let roundtrip_ast e =
  let printed = Expr.to_string e in
  let reparsed = Parser.expr_of_string printed in
  if Stdlib.compare e reparsed <> 0 then
    Alcotest.failf "roundtrip failed:\n  original : %s\n  reparsed : %s" printed
      (Expr.to_string reparsed)

let test_parse_operators () =
  let e = Parser.expr_of_string "R ++ S -- T" in
  (match e with
  | Expr.Diff (Expr.UnionAdd (Expr.Var "R", Expr.Var "S"), Expr.Var "T") -> ()
  | _ -> Alcotest.failf "wrong associativity: %s" (Expr.to_string e));
  let e2 = Parser.expr_of_string "R ++ S * T" in
  match e2 with
  | Expr.UnionAdd (Expr.Var "R", Expr.Product (Expr.Var "S", Expr.Var "T")) -> ()
  | _ -> Alcotest.failf "wrong precedence: %s" (Expr.to_string e2)

let test_parse_constructs () =
  roundtrip_ast (Derived.selfjoin (Expr.Var "B"));
  roundtrip_ast (Derived.transitive_closure (Expr.Var "G"));
  roundtrip_ast (Derived.diff_via_powerset (Expr.Var "R") (Expr.Var "S"));
  roundtrip_ast (Derived.average (Expr.Var "NS"));
  roundtrip_ast (Expr.Powerbag (Expr.Dedup (Expr.Var "R")));
  roundtrip_ast (Expr.empty (Ty.relation 2));
  roundtrip_ast
    (Expr.Fix ("X", Expr.UnionMax (Expr.Var "X", Expr.Var "G"), Expr.Var "G"))

let test_parse_projection () =
  let e = Parser.expr_of_string "map(x -> <x.2, x.1>, G)" in
  let g =
    Value.bag_of_list [ Value.tuple [ Value.atom "a"; Value.atom "b" ] ]
  in
  let v = Eval.eval (Eval.env_of_list [ ("G", g) ]) e in
  Alcotest.check value "swap via surface syntax"
    (Value.bag_of_list [ Value.tuple [ Value.atom "b"; Value.atom "a" ] ])
    v

let test_parse_pi_sugar () =
  let e = Parser.expr_of_string "pi[2, 1](G)" in
  let tenv = Typecheck.env_of_list [ ("G", Ty.relation 2) ] in
  Alcotest.check ty "pi types" (Ty.relation 2) (Typecheck.infer tenv e)

let test_parse_errors () =
  List.iter
    (fun s ->
      match Parser.expr_of_string s with
      | exception Parser.Parse_error _ -> ()
      | e -> Alcotest.failf "expected parse error on %S, got %s" s (Expr.to_string e))
    [ "map(x -> y"; "select(x -> a, B)"; "R ++"; "{{ }} ++ R"; "empty(U)"; "R S" ]

(* evaluating a parsed query end to end *)
let test_parse_eval_pipeline () =
  let db =
    Bagdb.parse
      {|
        # in-degree vs out-degree example
        bag G : {{<U, U>}} = {{ <'b,'a>, <'c,'a>, <'a,'b> }}
      |}
  in
  let q =
    Parser.expr_of_string
      "pi[2](select(x -> x.2 == 'a, G)) -- pi[1](select(x -> x.1 == 'a, G))"
  in
  ignore (Typecheck.infer (Bagdb.type_env db) q);
  let v = Eval.eval (Bagdb.value_env db) q in
  Alcotest.(check bool) "indeg(a) > outdeg(a)" true (Eval.truthy v)

(* --- bagdb ------------------------------------------------------------------ *)

let test_bagdb_load () =
  let db =
    Bagdb.parse
      "bag R : {{<U>}} = {{ <'a>, <'b>:2 }}\nbag S : {{U}} = {{ 'x }}"
  in
  Alcotest.(check int) "two bags" 2 (List.length db);
  let _, ty_r, v_r = List.hd db in
  Alcotest.check ty "declared type" (Ty.relation 1) ty_r;
  Alcotest.(check string) "duplicate kept" "2"
    (Bignat.to_string (Value.count_in (Value.tuple [ Value.atom "b" ]) v_r))

let test_bagdb_type_mismatch () =
  match Bagdb.parse "bag R : {{<U>}} = {{ 'a }}" with
  | exception Bagdb.Db_error _ -> ()
  | _ -> Alcotest.fail "expected Db_error"

let test_bagdb_duplicate_names () =
  match Bagdb.parse "bag R : {{U}} = {{ 'a }}\nbag R : {{U}} = {{ 'b }}" with
  | exception Bagdb.Db_error _ -> ()
  | _ -> Alcotest.fail "expected Db_error"

let test_bagdb_render_roundtrip () =
  let db =
    Bagdb.parse "bag R : {{<U>}} = {{ <'a>, <'b>:2 }}\nbag T : {{{{U}}}} = {{ {{'x:2}} }}"
  in
  let db2 = Bagdb.parse (Bagdb.render db) in
  List.iter2
    (fun (n1, t1, v1) (n2, t2, v2) ->
      Alcotest.(check string) "name" n1 n2;
      Alcotest.check ty "type" t1 t2;
      Alcotest.check value "value" v1 v2)
    db db2

(* random expressions roundtrip through print + parse *)
let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip on random expressions"
    ~count:200
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.flat rng [ ("R", 1); ("S", 2) ] 4 (1 + Random.State.int rng 2) in
      Stdlib.compare e (Parser.expr_of_string (Expr.to_string e)) = 0)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "types" `Quick test_parse_ty;
          Alcotest.test_case "values" `Quick test_parse_value;
          Alcotest.test_case "operators" `Quick test_parse_operators;
          Alcotest.test_case "constructs roundtrip" `Quick test_parse_constructs;
          Alcotest.test_case "map/select" `Quick test_parse_projection;
          Alcotest.test_case "pi sugar" `Quick test_parse_pi_sugar;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "end-to-end pipeline" `Quick test_parse_eval_pipeline;
        ] );
      ( "bagdb",
        [
          Alcotest.test_case "load" `Quick test_bagdb_load;
          Alcotest.test_case "type mismatch" `Quick test_bagdb_type_mismatch;
          Alcotest.test_case "duplicate names" `Quick test_bagdb_duplicate_names;
          Alcotest.test_case "render roundtrip" `Quick test_bagdb_render_roundtrip;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
