(* Tests for the fault-injection registry (determinism, trigger shapes,
   zero-cost disarmed path) and for cancellation-safe evaluation:
   Budget.cancel yields a structured Cancelled verdict, injected eval
   faults yield a located Injected verdict, and in both cases every pool
   domain is joined afterwards. *)

open Balg

let jobs =
  match Sys.getenv_opt "BALG_TEST_JOBS" with
  | Some s -> ( try max 2 (int_of_string s) with _ -> 4)
  | None -> 4

let site = Fault.register "test.site"

let fire_seq ?seed spec n =
  Fault.with_faults ?seed spec (fun () ->
      List.init n (fun _ -> Fault.fire site))

(* --- the registry ---------------------------------------------------------- *)

let test_disarmed_never_fires () =
  Alcotest.(check bool) "disarmed at startup" false (Fault.armed ());
  List.iter
    (fun _ -> Alcotest.(check bool) "no fire" false (Fault.fire site))
    (List.init 100 Fun.id);
  (* and with_faults restores the disarmed state afterwards *)
  ignore (fire_seq "test.site:always" 3);
  Alcotest.(check bool) "disarmed after with_faults" false (Fault.armed ());
  Alcotest.(check bool) "no fire after with_faults" false (Fault.fire site)

let test_trigger_shapes () =
  Alcotest.(check (list bool))
    "always fires on every hit"
    [ true; true; true ]
    (fire_seq "test.site:always" 3);
  Alcotest.(check (list bool))
    "n=K fires exactly once, on the K-th hit"
    [ false; false; true; false; false ]
    (fire_seq "test.site:n=3" 5);
  Alcotest.(check (list bool))
    "every=K fires on multiples of K"
    [ false; true; false; true; false; true ]
    (fire_seq "test.site:every=2" 6);
  Alcotest.(check (list bool))
    "off never fires"
    [ false; false; false ]
    (fire_seq "test.site:off" 3)

let test_probabilistic_determinism () =
  let a = fire_seq ~seed:17 "test.site:p=0.5" 200 in
  let b = fire_seq ~seed:17 "test.site:p=0.5" 200 in
  Alcotest.(check (list bool)) "same seed replays the same sequence" a b;
  let fires = List.length (List.filter Fun.id a) in
  Alcotest.(check bool) "p=0.5 fires a nontrivial fraction" true
    (fires > 50 && fires < 150)

let test_bad_specs_rejected () =
  List.iter
    (fun spec ->
      match Fault.configure spec with
      | Ok () -> Alcotest.failf "spec %S should have been rejected" spec
      | Error _ -> Alcotest.(check bool) "nothing armed" false (Fault.armed ()))
    [ "nonsense"; "test.site:"; "test.site:n=x"; "test.site:p=2.5"; ":always" ]

(* --- cancellation ----------------------------------------------------------- *)

let roomy_limits =
  {
    Budget.default with
    Budget.fuel = 50_000_000;
    max_support = 500_000;
    max_size = 50_000_000;
  }

let selfjoin_query seed =
  let rng = Random.State.make [| seed |] in
  let bag = Baggen.Genval.flat_bag rng ~n_atoms:10 ~arity:2 ~size:60 ~max_count:2 in
  Derived.selfjoin (Expr.lit bag (Ty.relation 2))

let test_precancelled_budget () =
  (* deterministic: a budget cancelled before the first charge must yield
     the Cancelled verdict at node 0, never a value *)
  let q = selfjoin_query 7 in
  let budget = Budget.start roomy_limits in
  Budget.cancel budget;
  Alcotest.(check bool) "cancelled observable" true (Budget.cancelled budget);
  match Eval.run ~budget (Eval.env_of_list []) q with
  | Ok _ -> Alcotest.fail "expected a Cancelled verdict"
  | Error x ->
      Alcotest.(check bool) "resource = Cancelled" true
        (x.Budget.resource = Budget.Cancelled);
      Alcotest.(check int) "located at node 0" 0 x.Budget.at_node

let test_cancel_does_not_override_verdict () =
  (* an already-published exhaustion verdict stands: cancel after the trip
     must not rewrite history *)
  let q = selfjoin_query 13 in
  let limits = { roomy_limits with Budget.max_support = 100 } in
  let budget = Budget.start limits in
  (match Eval.run ~budget (Eval.env_of_list []) q with
  | Ok _ -> Alcotest.fail "expected exhaustion"
  | Error x ->
      Alcotest.(check bool) "support verdict first" true
        (x.Budget.resource = Budget.Support));
  Budget.cancel budget;
  match Budget.verdict budget with
  | Some x ->
      Alcotest.(check bool) "original verdict survives cancel" true
        (x.Budget.resource = Budget.Support)
  | None -> Alcotest.fail "verdict vanished"

let test_concurrent_cancel_joins_pool () =
  (* A cancel raced from another domain mid-evaluation: the run must end
     in Ok (finished first) or a structured Cancelled verdict — never a
     raw exception — and the pool must be fully joined either way. *)
  let q = selfjoin_query 23 in
  let outcomes =
    List.map
      (fun delay ->
        let budget = Budget.start roomy_limits in
        let p = Pool.create ~chunk_min:1 ~fork_min:1 ~jobs () in
        let canceller =
          Domain.spawn (fun () ->
              Unix.sleepf delay;
              Budget.cancel budget)
        in
        let r = Eval.run ~budget ~pool:p (Eval.env_of_list []) q in
        Domain.join canceller;
        Pool.shutdown p;
        Alcotest.(check int) "no live domains after shutdown" 0 (Pool.live p);
        match r with
        | Ok _ -> `Finished
        | Error x when x.Budget.resource = Budget.Cancelled -> `Cancelled
        | Error x ->
            Alcotest.failf "unexpected verdict: %s"
              (Budget.exhaustion_to_string x))
      [ 0.0; 0.0005; 0.002; 0.01 ]
  in
  ignore outcomes

(* --- injected verdicts ------------------------------------------------------ *)

let test_injected_eval_verdict () =
  (* the eval.step site converts a firing hit into a located Injected
     verdict, and the same seed+spec replays the identical verdict.  A
     binder body runs once per distinct element (~30 here), so the site
     sees comfortably more hits than the n=20 trigger needs. *)
  let q =
    let rng = Random.State.make [| 7 |] in
    let bag =
      Baggen.Genval.flat_bag rng ~n_atoms:10 ~arity:1 ~size:60 ~max_count:2
    in
    Expr.Map ("x", Expr.Sing (Expr.Var "x"), Expr.lit bag (Ty.relation 1))
  in
  let verdict () =
    Fault.with_faults ~seed:3 "eval.step:n=20" (fun () ->
        match Eval.run ~limits:roomy_limits (Eval.env_of_list []) q with
        | Ok _ -> Alcotest.fail "expected an Injected verdict"
        | Error x -> x)
  in
  let x = verdict () in
  Alcotest.(check bool) "resource = Injected" true
    (x.Budget.resource = Budget.Injected);
  Alcotest.(check string) "op names the site" "eval.step" x.Budget.op;
  Alcotest.(check bool) "located at a real node" true (x.Budget.at_node >= 0);
  let y = verdict () in
  Alcotest.(check bool) "same seed, same verdict" true (x = y)

let test_injected_kernel_verdict () =
  (* bag.alloc faults are caught at the Eval.run boundary *)
  let q = selfjoin_query 7 in
  Fault.with_faults ~seed:5 "bag.alloc:always" (fun () ->
      match Eval.run ~limits:roomy_limits (Eval.env_of_list []) q with
      | Ok _ -> Alcotest.fail "expected an Injected verdict"
      | Error x ->
          Alcotest.(check bool) "resource = Injected" true
            (x.Budget.resource = Budget.Injected);
          Alcotest.(check string) "op names the site" "bag.alloc" x.Budget.op)

let test_injected_vec_kernel_verdict () =
  (* the vec engine's kernel-allocation site surfaces the same structured
     verdict through Veval.run — an allocation death inside a columnar
     kernel never escapes as a crash *)
  let q = selfjoin_query 7 in
  Fault.with_faults ~seed:5 "vec.alloc:always" (fun () ->
      match Veval.run ~limits:roomy_limits (Eval.env_of_list []) q with
      | Ok _ -> Alcotest.fail "expected an Injected verdict"
      | Error x ->
          Alcotest.(check bool) "resource = Injected" true
            (x.Budget.resource = Budget.Injected);
          Alcotest.(check string) "op names the site" "vec.alloc" x.Budget.op)

let () =
  Alcotest.run "fault"
    [
      ( "registry",
        [
          Alcotest.test_case "disarmed never fires" `Quick
            test_disarmed_never_fires;
          Alcotest.test_case "trigger shapes" `Quick test_trigger_shapes;
          Alcotest.test_case "probabilistic determinism" `Quick
            test_probabilistic_determinism;
          Alcotest.test_case "bad specs rejected" `Quick test_bad_specs_rejected;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "pre-cancelled budget" `Quick
            test_precancelled_budget;
          Alcotest.test_case "cancel does not override verdict" `Quick
            test_cancel_does_not_override_verdict;
          Alcotest.test_case "concurrent cancel joins pool" `Quick
            test_concurrent_cancel_joins_pool;
        ] );
      ( "injection",
        [
          Alcotest.test_case "eval.step verdict" `Quick
            test_injected_eval_verdict;
          Alcotest.test_case "bag.alloc verdict" `Quick
            test_injected_kernel_verdict;
          Alcotest.test_case "vec.alloc verdict" `Quick
            test_injected_vec_kernel_verdict;
        ] );
    ]
