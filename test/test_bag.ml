(* Tests for the primitive bag operations, including the paper's exact
   multiplicity laws for powerset / powerbag / destroy (§3, Prop 3.2). *)

open Balg
module B = Bignat

let value = Alcotest.testable Value.pp Value.equal

let a = Value.atom "a"
let b = Value.atom "b"
let c = Value.atom "c"
let bag = Value.bag_of_list
let bagc l = Value.bag_of_assoc (List.map (fun (v, n) -> (v, B.of_int n)) l)

let test_union_add () =
  Alcotest.check value "counts sum"
    (bagc [ (a, 3); (b, 1); (c, 1) ])
    (Bag.union_add (bagc [ (a, 2); (b, 1) ]) (bagc [ (a, 1); (c, 1) ]))

let test_diff () =
  Alcotest.check value "monus per element"
    (bagc [ (a, 1) ])
    (Bag.diff (bagc [ (a, 3); (b, 1) ]) (bagc [ (a, 2); (b, 5) ]));
  Alcotest.check value "diff with empty" (bagc [ (a, 3) ])
    (Bag.diff (bagc [ (a, 3) ]) Value.empty_bag)

let test_union_max_inter () =
  let x = bagc [ (a, 2); (b, 1) ] and y = bagc [ (a, 1); (b, 4); (c, 2) ] in
  Alcotest.check value "max" (bagc [ (a, 2); (b, 4); (c, 2) ]) (Bag.union_max x y);
  Alcotest.check value "inter" (bagc [ (a, 1); (b, 1) ]) (Bag.inter x y)

let test_subbag () =
  Alcotest.(check bool) "subbag by counts" true
    (Bag.subbag (bagc [ (a, 2) ]) (bagc [ (a, 3); (b, 1) ]));
  Alcotest.(check bool) "count exceeds" false
    (Bag.subbag (bagc [ (a, 4) ]) (bagc [ (a, 3); (b, 1) ]));
  Alcotest.(check bool) "empty always" true
    (Bag.subbag Value.empty_bag (bagc [ (a, 1) ]))

let test_product () =
  let l = bagc [ (Value.tuple [ a ], 2) ]
  and r = bagc [ (Value.tuple [ b ], 3); (Value.tuple [ c ], 1) ] in
  Alcotest.check value "counts multiply, tuples concatenate"
    (bagc [ (Value.tuple [ a; b ], 6); (Value.tuple [ a; c ], 2) ])
    (Bag.product l r)

let test_destroy () =
  let inner1 = bagc [ (a, 1); (b, 2) ] and inner2 = bagc [ (a, 3) ] in
  let nested = Value.bag_of_assoc [ (inner1, B.of_int 2); (inner2, B.one) ] in
  Alcotest.check value "weighted additive union"
    (bagc [ (a, 5); (b, 4) ])
    (Bag.destroy nested)

let test_dedup_scale_map_select () =
  Alcotest.check value "dedup" (bagc [ (a, 1); (b, 1) ])
    (Bag.dedup (bagc [ (a, 5); (b, 2) ]));
  Alcotest.check value "scale" (bagc [ (a, 10) ]) (Bag.scale (B.of_int 5) (bagc [ (a, 2) ]));
  Alcotest.check value "scale by zero" Value.empty_bag
    (Bag.scale B.zero (bagc [ (a, 2) ]));
  Alcotest.check value "map coalesces additively" (bagc [ (c, 7) ])
    (Bag.map (fun _ -> c) (bagc [ (a, 5); (b, 2) ]));
  Alcotest.check value "select" (bagc [ (a, 5) ])
    (Bag.select (Value.equal a) (bagc [ (a, 5); (b, 2) ]))

(* §5: "the powerbag of [{{a, a}}] differs from its powerset" — the paper's
   exact example. *)
let test_paper_example_aa () =
  let aa = bagc [ (a, 2) ] in
  Alcotest.check value "powerset {{a,a}}"
    (bag [ Value.empty_bag; bagc [ (a, 1) ]; bagc [ (a, 2) ] ])
    (Bag.powerset aa);
  Alcotest.check value "powerbag {{a,a}}"
    (Value.bag_of_assoc
       [
         (Value.empty_bag, B.one);
         (bagc [ (a, 1) ], B.of_int 2);
         (bagc [ (a, 2) ], B.one);
       ])
    (Bag.powerbag aa)

(* §1: powerbag of n occurrences of one constant has cardinality 2^n, its
   powerset has cardinality n+1. *)
let test_powerset_powerbag_cardinality () =
  List.iter
    (fun n ->
      let bn = Value.replicate (B.of_int n) a in
      Alcotest.(check string)
        (Printf.sprintf "powerset card at n=%d" n)
        (string_of_int (n + 1))
        (B.to_string (Value.cardinal (Bag.powerset bn)));
      Alcotest.(check string)
        (Printf.sprintf "powerbag card at n=%d" n)
        (B.to_string (B.pow2 n))
        (B.to_string (Value.cardinal (Bag.powerbag bn))))
    [ 0; 1; 2; 5; 10 ]

(* Prop 3.2's claim: for B with k constants of multiplicity m each,
   δ(P(B)) contains m(m+1)^k / 2 occurrences of each constant, and
   δ(δ(P(P(B)))) contains 2^((m+1)^k − 2) · (m+1)^k · m occurrences. *)
let test_prop32_claim () =
  let check_dp k m =
    let bag_km =
      Value.bag_of_assoc
        (List.init k (fun i ->
             (Value.atom (Printf.sprintf "x%d" i), B.of_int m)))
    in
    let dp = Bag.destroy (Bag.powerset bag_km) in
    let expected = B.div (B.mul (B.of_int m) (B.pow (B.of_int (m + 1)) k)) B.two in
    List.iter
      (fun v ->
        Alcotest.(check string)
          (Printf.sprintf "dP count k=%d m=%d" k m)
          (B.to_string expected)
          (B.to_string (Value.count_in v dp)))
      (Value.support dp)
  in
  List.iter (fun (k, m) -> check_dp k m) [ (1, 1); (1, 3); (2, 2); (3, 1); (2, 3) ];
  (* the ddPP form, small parameters only *)
  let check_ddpp k m =
    let bag_km =
      Value.bag_of_assoc
        (List.init k (fun i ->
             (Value.atom (Printf.sprintf "x%d" i), B.of_int m)))
    in
    let v = Bag.destroy (Bag.destroy (Bag.powerset (Bag.powerset bag_km))) in
    let mp1k = B.to_int_exn (B.pow (B.of_int (m + 1)) k) in
    let expected = B.mul (B.pow2 (mp1k - 2)) (B.mul (B.of_int mp1k) (B.of_int m)) in
    List.iter
      (fun x ->
        Alcotest.(check string)
          (Printf.sprintf "ddPP count k=%d m=%d" k m)
          (B.to_string expected)
          (B.to_string (Value.count_in x v)))
      (Value.support v)
  in
  List.iter (fun (k, m) -> check_ddpp k m) [ (1, 1); (1, 2); (2, 1); (1, 3) ]

let test_powerset_structure () =
  let v = bagc [ (a, 1); (b, 2) ] in
  let p = Bag.powerset v in
  (* (1+1)*(2+1) = 6 distinct subbags, each once *)
  Alcotest.(check int) "distinct subbags" 6 (Value.support_size p);
  Alcotest.(check string) "each once" "1" (B.to_string (Bag.max_count p));
  List.iter
    (fun (sub, _) ->
      Alcotest.(check bool) "is a subbag" true (Bag.subbag sub v))
    (Value.as_bag p)

let test_powerbag_total () =
  (* total cardinality of Pb(B) is 2^|B| for any B *)
  let v = bagc [ (a, 2); (b, 1); (c, 3) ] in
  Alcotest.(check string) "2^6" (B.to_string (B.pow2 6))
    (B.to_string (Value.cardinal (Bag.powerbag v)))

(* The power kernels are unguarded; callers consult [expected_subbags]
   first (Eval pre-charges it against the budget, Explain checks its cap).
   Here: the prediction is exact on a feasible bag, and materialisation
   agrees with it. *)
let test_expected_subbags_guard () =
  let big = Value.replicate (B.of_int 100) a in
  Alcotest.(check int) "replicate-100 predicts 101" 101
    (Bag.expected_subbags big);
  Alcotest.(check int) "powerset materialises the prediction" 101
    (Value.support_size (Bag.powerset big))

(* Regression: the subbag-count prediction multiplies (m_i + 1) across the
   support, and with wrapping arithmetic a crafted pair of multiplicities
   lands the product right back inside the allowed range — 16 * 2^60 = 2^64
   ≡ 0 in OCaml's native int — so the old guard waved through an
   enumeration of 2^60 subbags (this test used to hang until the machine
   OOMed).  The product saturates: infeasible bags must predict max_int,
   and no caller consulting the prediction will then materialise. *)
let test_expected_subbags_overflow_bypass () =
  let crafted =
    bagc [ (a, 15); (b, (1 lsl 60) - 1) ]
    (* (15+1) * (2^60-1+1) wraps to 0 *)
  in
  Alcotest.(check int) "saturates instead of wrapping" max_int
    (Bag.expected_subbags crafted);
  (* a multiplicity beyond int range also saturates *)
  let astronomical = bagc [ (a, 1) ] in
  let astronomical =
    Value.bag_of_assoc
      ((b, B.pow2 80) :: Value.as_bag astronomical)
  in
  Alcotest.(check int) "non-int multiplicity saturates" max_int
    (Bag.expected_subbags astronomical)

(* --- cross-check against the generic multiset -------------------------- *)

module MS = Mset.Multiset.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

let to_ms v = List.fold_left (fun m (x, c) -> MS.add ~count:c x m) MS.empty (Value.as_bag v)
let of_ms m = Value.bag_of_assoc (MS.to_list m)

let gen_flat_bag =
  QCheck.Gen.map
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      Baggen.Genval.flat_bag rng ~n_atoms:4 ~arity:1 ~size:6 ~max_count:4)
    QCheck.Gen.int

let arb_bag = QCheck.make ~print:Value.to_string gen_flat_bag

let agree name balg_op ms_op =
  QCheck.Test.make ~name ~count:300
    QCheck.(pair arb_bag arb_bag)
    (fun (x, y) ->
      Value.equal (balg_op x y) (of_ms (ms_op (to_ms x) (to_ms y))))

let props = List.map QCheck_alcotest.to_alcotest
  [
    agree "union_add agrees with Multiset" Bag.union_add MS.union_add;
    agree "union_max agrees with Multiset" Bag.union_max MS.union_max;
    agree "inter agrees with Multiset" Bag.inter MS.inter;
    agree "diff agrees with Multiset" Bag.diff MS.diff;
    QCheck.Test.make ~name:"destroy of powerset halves" ~count:100 arb_bag
      (fun v ->
        (* every element's count in δ(P(B)) is (card subbag sum) / 2 -- check
           the global identity: card(δ(P(B))) = card(B) * |P(B)| / 2 *)
        let p = Bag.powerset v in
        let lhs = Value.cardinal (Bag.destroy p) in
        let rhs = B.div (B.mul (Value.cardinal v) (Value.cardinal p)) B.two in
        B.equal lhs rhs);
  ]

let () =
  Alcotest.run "bag"
    [
      ( "unit",
        [
          Alcotest.test_case "union_add" `Quick test_union_add;
          Alcotest.test_case "diff" `Quick test_diff;
          Alcotest.test_case "union_max / inter" `Quick test_union_max_inter;
          Alcotest.test_case "subbag" `Quick test_subbag;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "destroy" `Quick test_destroy;
          Alcotest.test_case "dedup/scale/map/select" `Quick test_dedup_scale_map_select;
          Alcotest.test_case "paper example {{a,a}}" `Quick test_paper_example_aa;
          Alcotest.test_case "P vs Pb cardinalities" `Quick test_powerset_powerbag_cardinality;
          Alcotest.test_case "Prop 3.2 exact counts" `Quick test_prop32_claim;
          Alcotest.test_case "powerset structure" `Quick test_powerset_structure;
          Alcotest.test_case "powerbag total" `Quick test_powerbag_total;
          Alcotest.test_case "subbag prediction" `Quick
            test_expected_subbags_guard;
          Alcotest.test_case "subbag prediction overflow bypass" `Quick
            test_expected_subbags_overflow_bypass;
        ] );
      ("properties", props);
    ]
