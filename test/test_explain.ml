(* Tests for the evaluation profiler: results agree with Eval, binder
   bodies accumulate calls, fixpoints iterate, guards still fire. *)

open Balg

let value = Alcotest.testable Value.pp Value.equal

let rel2 l =
  Value.bag_of_list
    (List.map (fun (x, y) -> Value.tuple [ Value.atom x; Value.atom y ]) l)

let g = rel2 [ ("a", "b"); ("b", "c"); ("c", "d") ]
let env = Eval.env_of_list [ ("G", g) ]

let rec find_op op (p : Explain.profile) =
  if p.Explain.op = op then Some p
  else List.find_map (find_op op) p.Explain.children

let test_agrees_with_eval () =
  let queries =
    [
      Derived.selfjoin (Expr.Var "G");
      Derived.transitive_closure (Expr.Var "G");
      Expr.Powerset (Expr.proj_attrs [ 1 ] (Expr.Var "G"));
      Derived.indeg_gt_outdeg (Expr.Var "G") (Expr.atom "b");
    ]
  in
  List.iter
    (fun q ->
      let v, _ = Explain.run ~env q in
      Alcotest.check value "profiled result equals Eval" (Eval.eval env q) v)
    queries

let test_binder_call_counts () =
  (* map body runs once per distinct member *)
  let q = Expr.proj_attrs [ 1 ] (Expr.Var "G") in
  let _, p = Explain.run ~env q in
  (match find_op "tuple" p with
  | Some body -> Alcotest.(check int) "3 body evaluations" 3 body.Explain.calls
  | None -> Alcotest.fail "no tuple node");
  match find_op "map" p with
  | Some m ->
      Alcotest.(check int) "map evaluated once" 1 m.Explain.calls;
      Alcotest.(check int) "result support" 3 m.Explain.max_support
  | None -> Alcotest.fail "no map node"

let test_fixpoint_iterations_visible () =
  let q = Derived.transitive_closure (Expr.Var "G") in
  let _, p = Explain.run ~env q in
  match find_op "bfix" p with
  | Some fx ->
      Alcotest.(check bool) "fixpoint recorded" true (fx.Explain.calls >= 1);
      (* the body (second child: bound, body, seed) iterates; its union_max
         runs once per fixpoint step *)
      let body_profile = List.nth fx.Explain.children 1 in
      let body = find_op "union_max" body_profile in
      Alcotest.(check bool) "body iterated" true
        ((Option.get body).Explain.calls >= 2)
  | None -> Alcotest.fail "no bfix node"

let test_guard_fires () =
  let config = { Eval.default_config with Eval.max_support = 3 } in
  let q = Expr.Powerset (Expr.proj_attrs [ 1 ] (Expr.Var "G")) in
  match Explain.run ~config ~env q with
  | exception Eval.Resource_limit _ -> ()
  | _ -> Alcotest.fail "expected a guard exception"

let test_rendering () =
  let q = Derived.selfjoin (Expr.Var "G") in
  let _, p = Explain.run ~env q in
  let s = Explain.profile_to_string p in
  Alcotest.(check bool) "mentions product" true
    (String.length s > 0
    && List.exists
         (fun line ->
           String.length (String.trim line) > 0
           && String.starts_with ~prefix:"product" (String.trim line))
         (String.split_on_char '\n' s))

(* --engine vec: the explain output is the executed plan — same result as
   Eval, engine labels on every node, kernels and fallbacks side by side. *)

let rec plan_engines (p : Veval.plan) =
  p.Veval.p_engine :: List.concat_map plan_engines p.Veval.p_children

let test_vec_agrees_with_eval () =
  let queries =
    [
      Derived.selfjoin (Expr.Var "G");
      Derived.transitive_closure (Expr.Var "G");
      Expr.Powerset (Expr.proj_attrs [ 1 ] (Expr.Var "G"));
    ]
  in
  List.iter
    (fun q ->
      let v, _ = Explain.run_vec ~env q in
      Alcotest.check value "vec-profiled result equals Eval" (Eval.eval env q)
        v)
    queries

let test_vec_plan_labels () =
  let q = Expr.Powerset (Expr.proj_attrs [ 1 ] (Expr.Var "G")) in
  let _, plan = Explain.run_vec ~env q in
  let engines = plan_engines plan in
  Alcotest.(check string) "powerset on the tree path" "tree" plan.Veval.p_engine;
  Alcotest.(check bool) "some subtree ran a vec kernel" true
    (List.exists (String.starts_with ~prefix:"vec:") engines);
  let s = Veval.plan_to_string plan in
  Alcotest.(check bool) "rendering shows the engine of each subtree" true
    (String.length s > 0
    && List.exists
         (fun line ->
           let line = String.trim line in
           String.starts_with ~prefix:"powerset" line
           && String.ends_with ~suffix:"[tree]" line)
         (String.split_on_char '\n' s))

let test_vec_guard_fires () =
  let config = { Eval.default_config with Eval.max_support = 3 } in
  let q = Expr.Powerset (Expr.proj_attrs [ 1 ] (Expr.Var "G")) in
  match Explain.run_vec ~config ~env q with
  | exception Eval.Resource_limit _ -> ()
  | _ -> Alcotest.fail "expected a guard exception"

let () =
  Alcotest.run "explain"
    [
      ( "profiler",
        [
          Alcotest.test_case "agrees with Eval" `Quick test_agrees_with_eval;
          Alcotest.test_case "binder call counts" `Quick test_binder_call_counts;
          Alcotest.test_case "fixpoint iterations" `Quick test_fixpoint_iterations_visible;
          Alcotest.test_case "guards still fire" `Quick test_guard_fires;
          Alcotest.test_case "rendering" `Quick test_rendering;
        ] );
      ( "engine vec",
        [
          Alcotest.test_case "agrees with Eval" `Quick test_vec_agrees_with_eval;
          Alcotest.test_case "plan labels" `Quick test_vec_plan_labels;
          Alcotest.test_case "guards still fire" `Quick test_vec_guard_fires;
        ] );
    ]
