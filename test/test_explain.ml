(* Tests for the evaluation profiler: results agree with Eval, binder
   bodies accumulate calls, fixpoints iterate, guards still fire. *)

open Balg

let value = Alcotest.testable Value.pp Value.equal

let rel2 l =
  Value.bag_of_list
    (List.map (fun (x, y) -> Value.tuple [ Value.atom x; Value.atom y ]) l)

let g = rel2 [ ("a", "b"); ("b", "c"); ("c", "d") ]
let env = Eval.env_of_list [ ("G", g) ]

let rec find_op op (p : Explain.profile) =
  if p.Explain.op = op then Some p
  else List.find_map (find_op op) p.Explain.children

let test_agrees_with_eval () =
  let queries =
    [
      Derived.selfjoin (Expr.Var "G");
      Derived.transitive_closure (Expr.Var "G");
      Expr.Powerset (Expr.proj_attrs [ 1 ] (Expr.Var "G"));
      Derived.indeg_gt_outdeg (Expr.Var "G") (Expr.atom "b");
    ]
  in
  List.iter
    (fun q ->
      let v, _ = Explain.run ~env q in
      Alcotest.check value "profiled result equals Eval" (Eval.eval env q) v)
    queries

let test_binder_call_counts () =
  (* map body runs once per distinct member *)
  let q = Expr.proj_attrs [ 1 ] (Expr.Var "G") in
  let _, p = Explain.run ~env q in
  (match find_op "tuple" p with
  | Some body -> Alcotest.(check int) "3 body evaluations" 3 body.Explain.calls
  | None -> Alcotest.fail "no tuple node");
  match find_op "map" p with
  | Some m ->
      Alcotest.(check int) "map evaluated once" 1 m.Explain.calls;
      Alcotest.(check int) "result support" 3 m.Explain.max_support
  | None -> Alcotest.fail "no map node"

let test_fixpoint_iterations_visible () =
  let q = Derived.transitive_closure (Expr.Var "G") in
  let _, p = Explain.run ~env q in
  match find_op "bfix" p with
  | Some fx ->
      Alcotest.(check bool) "fixpoint recorded" true (fx.Explain.calls >= 1);
      (* the body (second child: bound, body, seed) iterates; its union_max
         runs once per fixpoint step *)
      let body_profile = List.nth fx.Explain.children 1 in
      let body = find_op "union_max" body_profile in
      Alcotest.(check bool) "body iterated" true
        ((Option.get body).Explain.calls >= 2)
  | None -> Alcotest.fail "no bfix node"

let test_guard_fires () =
  let config = { Eval.default_config with Eval.max_support = 3 } in
  let q = Expr.Powerset (Expr.proj_attrs [ 1 ] (Expr.Var "G")) in
  match Explain.run ~config ~env q with
  | exception Eval.Resource_limit _ -> ()
  | _ -> Alcotest.fail "expected a guard exception"

let test_rendering () =
  let q = Derived.selfjoin (Expr.Var "G") in
  let _, p = Explain.run ~env q in
  let s = Explain.profile_to_string p in
  Alcotest.(check bool) "mentions product" true
    (String.length s > 0
    && List.exists
         (fun line ->
           String.length (String.trim line) > 0
           && String.starts_with ~prefix:"product" (String.trim line))
         (String.split_on_char '\n' s))

(* --engine vec: the explain output is the executed plan — same result as
   Eval, engine labels on every node, kernels and fallbacks side by side. *)

let rec plan_engines (p : Veval.plan) =
  p.Veval.p_engine :: List.concat_map plan_engines p.Veval.p_children

let test_vec_agrees_with_eval () =
  let queries =
    [
      Derived.selfjoin (Expr.Var "G");
      Derived.transitive_closure (Expr.Var "G");
      Expr.Powerset (Expr.proj_attrs [ 1 ] (Expr.Var "G"));
    ]
  in
  List.iter
    (fun q ->
      let v, _ = Explain.run_vec ~env q in
      Alcotest.check value "vec-profiled result equals Eval" (Eval.eval env q)
        v)
    queries

let test_vec_plan_labels () =
  let q = Expr.Powerset (Expr.proj_attrs [ 1 ] (Expr.Var "G")) in
  let _, plan = Explain.run_vec ~env q in
  let engines = plan_engines plan in
  Alcotest.(check string) "powerset on the tree path" "tree" plan.Veval.p_engine;
  Alcotest.(check bool) "some subtree ran a vec kernel" true
    (List.exists (String.starts_with ~prefix:"vec:") engines);
  let s = Veval.plan_to_string plan in
  Alcotest.(check bool) "rendering shows the engine of each subtree" true
    (String.length s > 0
    && List.exists
         (fun line ->
           let line = String.trim line in
           String.starts_with ~prefix:"powerset" line
           && String.ends_with ~suffix:"[tree]" line)
         (String.split_on_char '\n' s))

let test_vec_guard_fires () =
  let config = { Eval.default_config with Eval.max_support = 3 } in
  let q = Expr.Powerset (Expr.proj_attrs [ 1 ] (Expr.Var "G")) in
  match Explain.run_vec ~config ~env q with
  | exception Eval.Resource_limit _ -> ()
  | _ -> Alcotest.fail "expected a guard exception"

(* --- EXPLAIN ANALYZE: measured vs estimated, and calibration -------------- *)

let tenv = Typecheck.env_of_list [ ("G", Ty.relation 2) ]
let vals = [ ("G", g) ]

let rec find_an op (a : Explain.annotated) =
  if a.Explain.an_op = op then Some a
  else List.find_map (find_an op) a.Explain.an_children

let test_analyze_tree () =
  let q = Derived.selfjoin (Expr.Var "G") in
  let v, a = Explain.analyze ~env ~vals ~tenv ~engine:Veval.Tree q in
  Alcotest.check value "analyzed result equals Eval" (Eval.eval env q) v;
  (match find_an "var G" a with
  | Some leaf ->
      Alcotest.(check bool) "leaf estimate is exact" true leaf.Explain.an_exact;
      Alcotest.(check int) "leaf estimate is the relation size" 3
        leaf.Explain.an_est;
      Alcotest.(check int) "leaf measured" 3 leaf.Explain.an_actual
  | None -> Alcotest.fail "no var G node");
  (match find_an "product" a with
  | Some pr ->
      Alcotest.(check int) "product estimated 3*3" 9 pr.Explain.an_est;
      Alcotest.(check int) "product measured" 9 pr.Explain.an_actual
  | None -> Alcotest.fail "no product node");
  (match find_an "select" a with
  | Some sel ->
      Alcotest.(check bool) "select estimate is heuristic" false
        sel.Explain.an_exact;
      Alcotest.(check bool) "select measured" true (sel.Explain.an_actual > 0)
  | None -> Alcotest.fail "no select node");
  let s = Explain.analysis_to_string a in
  Alcotest.(check bool) "table has the est/actual columns" true
    (String.length s > 0
    && List.exists
         (fun line ->
           String.trim line <> ""
           && String.starts_with ~prefix:"operator" (String.trim line))
         (String.split_on_char '\n' s));
  Alcotest.(check bool) "table summarises the q-error" true
    (List.exists
       (fun line -> String.starts_with ~prefix:"q-error" line)
       (String.split_on_char '\n' s))

(* The vec path must hand back the vec engine's value (bit-identical to
   the tree measurement run) with per-subtree engine labels attached. *)
let test_analyze_vec_identical () =
  let q = Derived.selfjoin (Expr.Var "G") in
  let v_tree, _ = Explain.analyze ~env ~vals ~tenv ~engine:Veval.Tree q in
  let v_vec, a = Explain.analyze ~env ~vals ~tenv ~engine:Veval.Vec q in
  Alcotest.check value "vec analyze equals tree analyze" v_tree v_vec;
  Alcotest.(check bool) "vec analyze equals Value.hash too" true
    (Value.hash v_tree = Value.hash v_vec);
  let rec engines a =
    a.Explain.an_engine
    :: List.concat_map engines a.Explain.an_children
  in
  Alcotest.(check bool) "engine labels attached" true
    (List.exists (function Some _ -> true | None -> false) (engines a))

let test_calibration_of_roundtrip () =
  let q = Derived.selfjoin (Expr.Var "G") in
  let _, a = Explain.analyze ~env ~vals ~tenv ~engine:Veval.Tree q in
  let c = Explain.calibration_of a in
  Alcotest.(check bool) "heuristic operators calibrated" true
    (Calib.entries c <> []);
  (* keys are operator families, single tokens — file-format safe *)
  List.iter
    (fun (op, _) ->
      Alcotest.(check bool)
        (op ^ " is a single token")
        false
        (String.contains op ' '))
    (Calib.entries c);
  match Calib.of_string (Calib.to_string c) with
  | Error m -> Alcotest.fail ("round-trip: " ^ m)
  | Ok c' ->
      List.iter
        (fun (op, e) ->
          match Calib.factor c' op with
          | None -> Alcotest.failf "factor for %s lost in round-trip" op
          | Some f ->
              Alcotest.(check bool)
                (op ^ " factor survives (1e-4)")
                true
                (abs_float (f -. e.Calib.c_factor) < 1e-4))
        (Calib.entries c)

let test_calib_parser_rejects () =
  (match Calib.of_string "join 2.0 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "data before the header must be rejected");
  (match Calib.of_string "# balg calibration v1\njoin zero 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a non-numeric factor must be rejected");
  (match Calib.of_string "# balg calibration v1\njoin -2.0 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a non-positive factor must be rejected");
  match Calib.of_string "# balg calibration v1\n\n# comment\njoin 2.5 3\n" with
  | Error m -> Alcotest.fail ("blank lines and comments must parse: " ^ m)
  | Ok c -> (
      match Calib.factor c "join" with
      | Some f -> Alcotest.(check (float 1e-9)) "factor read" 2.5 f
      | None -> Alcotest.fail "join entry lost")

let test_calib_save_load () =
  let c = Calib.of_observations [ ("join", 4, 8); ("select", 10, 5) ] in
  let path = Filename.temp_file "balg_calib" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Calib.save path c with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("save: " ^ m));
      match Calib.load path with
      | Error m -> Alcotest.fail ("load: " ^ m)
      | Ok c' ->
          Alcotest.(check (float 1e-6)) "join doubles" 2.0
            (Option.get (Calib.factor c' "join"));
          Alcotest.(check (float 1e-6)) "select halves" 0.5
            (Option.get (Calib.factor c' "select")))

let test_op_key () =
  Alcotest.(check string) "join 2=1 -> join" "join" (Calib.op_key "join 2=1");
  Alcotest.(check string) "var G -> var" "var" (Calib.op_key "var G");
  Alcotest.(check string) "bare names pass" "product" (Calib.op_key "product")

let () =
  Alcotest.run "explain"
    [
      ( "profiler",
        [
          Alcotest.test_case "agrees with Eval" `Quick test_agrees_with_eval;
          Alcotest.test_case "binder call counts" `Quick test_binder_call_counts;
          Alcotest.test_case "fixpoint iterations" `Quick test_fixpoint_iterations_visible;
          Alcotest.test_case "guards still fire" `Quick test_guard_fires;
          Alcotest.test_case "rendering" `Quick test_rendering;
        ] );
      ( "engine vec",
        [
          Alcotest.test_case "agrees with Eval" `Quick test_vec_agrees_with_eval;
          Alcotest.test_case "plan labels" `Quick test_vec_plan_labels;
          Alcotest.test_case "guards still fire" `Quick test_vec_guard_fires;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "measured vs estimated (tree)" `Quick
            test_analyze_tree;
          Alcotest.test_case "vec value identical, labels attached" `Quick
            test_analyze_vec_identical;
          Alcotest.test_case "calibration round-trips" `Quick
            test_calibration_of_roundtrip;
          Alcotest.test_case "calibration parser rejects junk" `Quick
            test_calib_parser_rejects;
          Alcotest.test_case "calibration save/load" `Quick
            test_calib_save_load;
          Alcotest.test_case "op_key strips parameters" `Quick test_op_key;
        ] );
    ]
