(* Tests for the proof-construction compilers: Thm 6.6 (IFP), Thm 6.1
   (powerset encoding), Lemma 5.7 (bounded arithmetic). *)

open Balg
module Tm = Turing.Tm
module Tmifp = Encodings.Tmifp
module Tm3 = Encodings.Tm3
module Arith = Encodings.Arith

(* --- Theorem 6.6: TM via IFP ---------------------------------------------- *)

let test_ifp_typechecks () =
  let ty = Typecheck.infer Tmifp.type_env (Tmifp.history_expr Tm.parity_even) in
  Alcotest.(check bool) "history has configuration type" true
    (Ty.equal ty Tmifp.conf_ty);
  (* bag nesting 2: Thm 6.6 applies from k = 2 up *)
  Alcotest.(check int) "nesting 2" 2
    (Typecheck.max_nesting Tmifp.type_env (Tmifp.accept_expr Tm.parity_even));
  let r = Analyze.analyze Tmifp.type_env (Tmifp.accept_expr Tm.parity_even) in
  Alcotest.(check bool) "classified Turing complete" true
    (r.Analyze.cclass = Analyze.Turing_complete)

let test_ifp_parity () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "IFP simulation of parity on %d" n)
        (Tm.accepts Tm.parity_even (Tm.unary n))
        (Tmifp.accepts Tm.parity_even ~space:(n + 2) (Tm.unary n)))
    [ 0; 1; 2; 3; 4 ]

let test_ifp_successor_output () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "algebraic successor of %d" n)
        (n + 1)
        (Tmifp.output_ones Tm.unary_successor ~space:(n + 2) (Tm.unary n)))
    [ 0; 1; 3 ]

let test_ifp_binary_increment () =
  (* decode the final tape produced by the algebra *)
  List.iter
    (fun n ->
      let input = Tm.to_binary n in
      let env =
        Eval.env_of_list
          [ ("B0", Tmifp.seed_value Tm.binary_increment ~space:(List.length input + 1) input) ]
      in
      let tape = Eval.eval env (Tmifp.final_tape_expr Tm.binary_increment) in
      (* cells <j, sym, st>: fold MSB-first by cell index *)
      let cells =
        List.sort
          (fun a b ->
            match (Value.view a, Value.view b) with
            | Value.Tuple (j1 :: _), Value.Tuple (j2 :: _) ->
                Bignat.compare (Value.nat_value j1) (Value.nat_value j2)
            | _ -> 0)
          (Value.support tape)
      in
      let decoded =
        List.fold_left
          (fun acc cell ->
            match Value.view cell with
            | Value.Tuple [ _; sym; _ ] -> (
                match Value.view sym with
                | Value.Atom "0" -> acc * 2
                | Value.Atom "1" -> (acc * 2) + 1
                | _ -> acc)
            | _ -> acc)
          0 cells
      in
      Alcotest.(check int)
        (Printf.sprintf "algebraic binary increment of %d" n)
        (n + 1) decoded)
    [ 0; 1; 3; 6 ]

let test_ifp_left_moves () =
  Alcotest.(check bool) "bouncer via IFP" true
    (Tmifp.accepts Tm.bouncer ~space:5 (Tm.unary 3))

let test_ifp_agrees_with_tm =
  QCheck.Test.make ~name:"IFP simulation == direct run (parity family)"
    ~count:8
    QCheck.(int_range 0 6)
    (fun n ->
      Tmifp.accepts Tm.parity_even ~space:(n + 2) (Tm.unary n)
      = Tm.accepts Tm.parity_even (Tm.unary n))

(* --- Theorem 6.1: TM via powerset ----------------------------------------- *)

let test_tm3_accepts () =
  Alcotest.(check bool) "tiny machine accepted through P-encoding" true
    (Tm3.accepts Tm.tiny_step ~space:2 [ "1"; "1" ])

let test_tm3_rejects () =
  (* same machine but with an unreachable accept state *)
  let stuck = { Tm.tiny_step with Tm.delta = (fun _ -> None) } in
  Alcotest.(check bool) "no run reaches qf" false
    (Tm3.accepts stuck ~space:2 [ "1"; "1" ])

let test_tm3_paper_shape () =
  (* the verbatim Thm 6.1 expression with D = P(E^i(B)): typechecks at bag
     nesting 3, and the analyzer places it in the hyper hierarchy *)
  let e = Tm3.tm_expr_paper ~i:1 Tm.tiny_step ~space:2 [ "1"; "1" ] in
  let env = Typecheck.env_of_list [ ("B", Ty.nat) ] in
  Alcotest.(check int) "bag nesting 3" 3 (Typecheck.max_nesting env e);
  let r = Analyze.analyze env e in
  Alcotest.(check bool) "hyper classification" true
    (match r.Analyze.cclass with
    | Analyze.Hyper_space _ | Analyze.Elementary -> true
    | _ -> false);
  Alcotest.(check bool) "power nesting >= 2" true (r.Analyze.power_nesting >= 2)

(* --- Lemma 5.7: bounded arithmetic ---------------------------------------- *)

let test_arith_reference () =
  (* n is even: exists x. x + x = n *)
  let even = Arith.Exists (Arith.Eq (Arith.TAdd (Arith.TVar 1, Arith.TVar 1), Arith.TInput)) in
  Alcotest.(check bool) "4 even" true (Arith.eval_formula ~bound:4 ~input:4 even);
  Alcotest.(check bool) "5 odd" false (Arith.eval_formula ~bound:5 ~input:5 even)

let algebra_matches name ~bounds f =
  List.iter
    (fun (bound, input) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s at bound=%d input=%d" name bound input)
        (Arith.eval_formula ~bound ~input f)
        (Arith.holds_via_algebra ~bound ~input f))
    bounds

let test_arith_compile_even () =
  let even = Arith.Exists (Arith.Eq (Arith.TAdd (Arith.TVar 1, Arith.TVar 1), Arith.TInput)) in
  algebra_matches "even" even
    ~bounds:[ (4, 4); (5, 5); (6, 6); (3, 3); (4, 2); (4, 3) ]

let test_arith_compile_composite () =
  (* n is composite: exists x y. 2<=x and 2<=y and x*y = n *)
  let two_le t = Arith.Le (Arith.TConst 2, t) in
  let composite =
    Arith.Exists
      (Arith.Exists
         (Arith.And
            ( Arith.And (two_le (Arith.TVar 1), two_le (Arith.TVar 2)),
              Arith.Eq (Arith.TMul (Arith.TVar 1, Arith.TVar 2), Arith.TInput) )))
  in
  algebra_matches "composite" composite
    ~bounds:[ (6, 6); (7, 7); (9, 9); (5, 5); (4, 4) ]

let test_arith_compile_forall () =
  (* forall x. x <= n  — true iff bound <= n *)
  let all_le = Arith.Forall (Arith.Le (Arith.TVar 1, Arith.TInput)) in
  algebra_matches "forall-le" all_le ~bounds:[ (3, 5); (5, 3); (4, 4) ]

let test_arith_negation () =
  let odd =
    Arith.Not
      (Arith.Exists (Arith.Eq (Arith.TAdd (Arith.TVar 1, Arith.TVar 1), Arith.TInput)))
  in
  algebra_matches "odd" odd ~bounds:[ (4, 4); (5, 5); (3, 3) ]

let test_arith_paper_domain_shape () =
  (* the paper-faithful domain P(E^0(b_n)) wrapped in 1-tuples has n+1
     members 0..n *)
  let d = Arith.paper_domain1 ~i:0 (Derived.nat_lit 3) in
  let v = Eval.eval (Eval.env_of_list []) d in
  Alcotest.(check int) "|D| = n+1" 4 (Value.support_size v);
  (* and uses the powerbag, per Lemma 5.7 *)
  Alcotest.(check bool) "powerbag used" true
    (Analyze.uses_powerbag (Arith.paper_domain1 ~i:1 (Derived.nat_lit 1)))

let () =
  Alcotest.run "encodings"
    [
      ( "thm 6.6 (IFP)",
        [
          Alcotest.test_case "typechecks at nesting 2" `Quick test_ifp_typechecks;
          Alcotest.test_case "parity simulation" `Quick test_ifp_parity;
          Alcotest.test_case "successor output" `Quick test_ifp_successor_output;
          Alcotest.test_case "left moves" `Quick test_ifp_left_moves;
          Alcotest.test_case "binary increment" `Quick test_ifp_binary_increment;
          QCheck_alcotest.to_alcotest test_ifp_agrees_with_tm;
        ] );
      ( "thm 6.1 (powerset)",
        [
          Alcotest.test_case "accepting run found" `Quick test_tm3_accepts;
          Alcotest.test_case "rejecting machine" `Quick test_tm3_rejects;
          Alcotest.test_case "paper shape typechecks" `Quick test_tm3_paper_shape;
        ] );
      ( "lemma 5.7 (arithmetic)",
        [
          Alcotest.test_case "reference semantics" `Quick test_arith_reference;
          Alcotest.test_case "even via algebra" `Quick test_arith_compile_even;
          Alcotest.test_case "composite via algebra" `Quick test_arith_compile_composite;
          Alcotest.test_case "forall via algebra" `Quick test_arith_compile_forall;
          Alcotest.test_case "negation via algebra" `Quick test_arith_negation;
          Alcotest.test_case "paper domain" `Quick test_arith_paper_domain_shape;
        ] );
    ]
