(* Tests for the rewriting engine: sound rules preserve bag semantics on
   random expressions and instances; the set-only rules are flagged by the
   same randomized check (the CV93 phenomenon) while remaining valid under
   set semantics. *)

open Balg
module Reval = Ralg.Reval

let env_spec = [ ("R", 1); ("S", 2) ]
let tenv = Typecheck.env_of_list (Baggen.Genexpr.env_types env_spec)

let eval_on inst e = Eval.eval (Eval.env_of_list inst) e

let equivalent_bag ?(trials = 25) rng e1 e2 =
  List.for_all
    (fun _ ->
      let inst = Baggen.Genexpr.instance rng env_spec in
      Value.equal (eval_on inst e1) (eval_on inst e2))
    (List.init trials Fun.id)

let equivalent_set ?(trials = 25) rng e1 e2 =
  List.for_all
    (fun _ ->
      let inst = Baggen.Genexpr.instance rng env_spec in
      Value.equal
        (Reval.eval (Reval.env_of_list inst) e1)
        (Reval.eval (Reval.env_of_list inst) e2))
    (List.init trials Fun.id)

(* --- unit rules ----------------------------------------------------------- *)

let norm e = fst (Rewrite.normalize tenv e)

let expr_eq = Alcotest.testable Expr.pp (fun a b -> Stdlib.compare a b = 0)

let test_units () =
  let r = Expr.Var "R" in
  let emp = Expr.empty (Ty.relation 1) in
  Alcotest.check expr_eq "union with empty" r (norm (Expr.UnionAdd (r, emp)));
  Alcotest.check expr_eq "diff with empty" r (norm (Expr.Diff (r, emp)));
  Alcotest.check expr_eq "inter with empty" emp (norm (Expr.Inter (r, emp)));
  Alcotest.check expr_eq "self difference" emp (norm (Expr.Diff (r, r)));
  Alcotest.check expr_eq "self intersection" r (norm (Expr.Inter (r, r)));
  Alcotest.check expr_eq "dedup dedup" (Expr.Dedup r) (norm (Expr.Dedup (Expr.Dedup r)));
  Alcotest.check expr_eq "dedup powerset" (Expr.Powerset r)
    (norm (Expr.Dedup (Expr.Powerset r)));
  Alcotest.check expr_eq "destroy sing" r (norm (Expr.Destroy (Expr.Sing r)));
  Alcotest.check expr_eq "map identity" r (norm (Expr.Map ("x", Expr.Var "x", r)))

let test_commutation_normalises () =
  let a = Expr.Var "R" and b = Expr.Dedup (Expr.Var "R") in
  (* whatever the input order, both orders normalise identically *)
  Alcotest.check expr_eq "orientation canonical"
    (norm Expr.(a ++ b))
    (norm Expr.(b ++ a))

let test_map_fusion () =
  let g = Expr.Var "S" in
  let inner = Expr.proj_attrs [ 2; 1 ] g in
  let outer =
    Expr.Map ("z", Expr.Tuple [ Expr.Proj (2, Expr.Var "z") ], inner)
  in
  let fused = norm outer in
  (* fused form has a single Map *)
  let rec count_maps e =
    (match e with Expr.Map _ -> 1 | _ -> 0)
    + List.fold_left (fun acc c -> acc + count_maps c) 0 (Expr.children e)
  in
  Alcotest.(check int) "one map after fusion" 1 (count_maps fused);
  let rng = Random.State.make [| 7 |] in
  Alcotest.(check bool) "fusion preserves semantics" true
    (equivalent_bag rng outer fused)

let test_select_pushdown () =
  let x = "x" in
  let cond_left =
    Expr.Select (x, Expr.Proj (1, Expr.Var x), Expr.atom "a",
      Expr.Product (Expr.Var "R", Expr.Var "S"))
  in
  let pushed = norm cond_left in
  (match pushed with
  | Expr.Product (Expr.Select _, _) -> ()
  | e -> Alcotest.failf "expected pushed-left product, got %s" (Expr.to_string e));
  let cond_right =
    Expr.Select (x, Expr.Proj (3, Expr.Var x), Expr.atom "a",
      Expr.Product (Expr.Var "R", Expr.Var "S"))
  in
  (match norm cond_right with
  | Expr.Product (_, Expr.Select _) -> ()
  | e -> Alcotest.failf "expected pushed-right product, got %s" (Expr.to_string e));
  let rng = Random.State.make [| 11 |] in
  Alcotest.(check bool) "pushdown left preserves semantics" true
    (equivalent_bag rng cond_left (norm cond_left));
  Alcotest.(check bool) "pushdown right preserves semantics" true
    (equivalent_bag rng cond_right (norm cond_right))

(* --- regressions: binder bugs in the rule library -------------------------- *)

(* map-fusion once captured a free variable: fusing
   [MAP λx.outer (MAP λy.inner e)] re-bound [outer] under λy, so a free [y]
   in [outer] (referring to an enclosing binder) was silently re-pointed at
   the inner element.  The old rule turned this query's <r, s> pairs into
   <r, r> pairs. *)
let test_map_fusion_capture () =
  let p1 v = Expr.Proj (1, Expr.Var v) in
  let inner_map = Expr.Map ("y", Expr.Tuple [ p1 "y" ], Expr.Var "R") in
  let sub = Expr.Map ("x", Expr.Tuple [ p1 "x"; p1 "y" ], inner_map) in
  let e = Expr.Map ("y", sub, Expr.Var "S") in
  (* what the pre-fix rule produced: substitution, then blind re-binding *)
  let buggy_sub =
    Expr.Map
      ( "y",
        Expr.subst "x" (Expr.Tuple [ p1 "y" ]) (Expr.Tuple [ p1 "x"; p1 "y" ]),
        Expr.Var "R" )
  in
  let buggy = Expr.Map ("y", buggy_sub, Expr.Var "S") in
  let inst =
    [
      ("R", Value.bag_of_list [ Value.tuple [ Value.atom "a" ] ]);
      ("S",
       Value.bag_of_list [ Value.tuple [ Value.atom "b"; Value.atom "c" ] ]);
    ]
  in
  let fused = norm e in
  let rec count_maps e =
    (match e with Expr.Map _ -> 1 | _ -> 0)
    + List.fold_left (fun acc c -> acc + count_maps c) 0 (Expr.children e)
  in
  Alcotest.(check int) "fusion still fires (alpha-renamed)" 2 (count_maps fused);
  Alcotest.(check bool) "fused form preserves semantics" true
    (Value.equal (eval_on inst e) (eval_on inst fused));
  Alcotest.(check bool) "the captured form really evaluated differently" false
    (Value.equal (eval_on inst e) (eval_on inst buggy));
  let rng = Random.State.make [| 23 |] in
  Alcotest.(check bool) "fused form equivalent on random instances" true
    (equivalent_bag rng e fused)

(* select-pushdown once shifted projections under binders that rebind the
   tuple variable: pushing this condition to the right product operand
   rewrote the [x.2] inside [let x = <'a,'b> in x.2] to [x.1], turning the
   compared constant from 'b into 'a. *)
let test_pushdown_shadowing () =
  let shadowed =
    Expr.Let
      ( "x",
        Expr.Tuple [ Expr.atom "a"; Expr.atom "b" ],
        Expr.Proj (2, Expr.Var "x") )
  in
  let q =
    Expr.Select
      ( "x",
        Expr.Proj (2, Expr.Var "x"),
        shadowed,
        Expr.Product (Expr.Var "R", Expr.Var "S") )
  in
  let pushed = norm q in
  (match pushed with
  | Expr.Product (_, Expr.Select (_, _, r, _)) ->
      Alcotest.check expr_eq "shadowed Let body left untouched" shadowed r
  | e -> Alcotest.failf "expected pushed-right product, got %s" (Expr.to_string e));
  (* what the pre-fix shift produced on the right operand *)
  let buggy =
    Expr.Product
      ( Expr.Var "R",
        Expr.Select
          ( "x",
            Expr.Proj (1, Expr.Var "x"),
            Expr.Let
              ( "x",
                Expr.Tuple [ Expr.atom "a"; Expr.atom "b" ],
                Expr.Proj (1, Expr.Var "x") ),
            Expr.Var "S" ) )
  in
  let inst =
    [
      ("R", Value.bag_of_list [ Value.tuple [ Value.atom "u" ] ]);
      ("S",
       Value.bag_of_list
         [
           Value.tuple [ Value.atom "a"; Value.atom "v" ];
           Value.tuple [ Value.atom "b"; Value.atom "w" ];
         ]);
    ]
  in
  Alcotest.(check bool) "pushed form preserves semantics" true
    (Value.equal (eval_on inst q) (eval_on inst pushed));
  Alcotest.(check bool) "the shadow-shifted form really evaluated differently"
    false
    (Value.equal (eval_on inst q) (eval_on inst buggy));
  let rng = Random.State.make [| 29 |] in
  Alcotest.(check bool) "pushed form equivalent on random instances" true
    (equivalent_bag rng q pushed)

(* --- randomized soundness -------------------------------------------------- *)

let prop_normalize_sound =
  QCheck.Test.make ~name:"normal form is bag-equivalent" ~count:120
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.flat rng env_spec 4 (1 + Random.State.int rng 2) in
      let e', _ = Rewrite.normalize tenv e in
      equivalent_bag ~trials:10 rng e e')

(* Differential check under a *tight* budget: normalisation must commute
   with governed evaluation — when both sides finish, the values agree; an
   exhaustion verdict on either side is tolerated (rewriting legitimately
   changes how much work a query needs) but no raw exception may escape. *)
let tight_limits =
  {
    Budget.default with
    Budget.fuel = 50_000;
    max_support = 400;
    max_size = 20_000;
  }

let prop_differential gen gen_name =
  QCheck.Test.make
    ~name:(Printf.sprintf "normalize commutes with governed eval (%s)" gen_name)
    ~count:100
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = gen rng env_spec 4 (1 + Random.State.int rng 2) in
      let e', _ = Rewrite.normalize tenv e in
      List.for_all
        (fun _ ->
          let inst = Baggen.Genexpr.instance rng env_spec in
          let run q = Eval.run ~limits:tight_limits (Eval.env_of_list inst) q in
          match (run e, run e') with
          | Ok v, Ok v' -> Value.equal v v'
          | Error _, _ | _, Error _ -> true)
        (List.init 8 Fun.id))

let prop_differential_flat = prop_differential (Baggen.Genexpr.flat ?allow_diff:None ?allow_dedup:None) "flat"
let prop_differential_nested = prop_differential Baggen.Genexpr.nested "nested"

let prop_normalize_welltyped =
  QCheck.Test.make ~name:"normal form stays well-typed" ~count:120
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.flat rng env_spec 4 (1 + Random.State.int rng 2) in
      let ty = Typecheck.infer tenv e in
      let e', _ = Rewrite.normalize tenv e in
      Ty.equal ty (Typecheck.infer tenv e'))

(* --- CV93: set-only rules break bag semantics ------------------------------ *)

let test_selfproduct_rule_cv93 () =
  let r = Expr.Var "R" in
  let q = Expr.proj_attrs [ 1 ] (Expr.Product (r, r)) in
  let rewritten, log =
    Rewrite.normalize ~rules:Rewrite.set_only_rules tenv q
  in
  Alcotest.(check bool) "rule fired" true
    (List.exists (fun n -> n = "self-product-projection (set-only)") log);
  Alcotest.check expr_eq "rewrites to R" r rewritten;
  let rng = Random.State.make [| 3 |] in
  Alcotest.(check bool) "valid under set semantics" true
    (equivalent_set rng q rewritten);
  Alcotest.(check bool) "INVALID under bag semantics" false
    (equivalent_bag rng q rewritten)

let test_dedup_rule_cv93 () =
  let q = Expr.Dedup (Expr.proj_attrs [ 1 ] (Expr.Var "S")) in
  let rewritten, _ =
    Rewrite.normalize ~rules:[ List.nth Rewrite.set_only_rules 1 ] tenv q
  in
  let rng = Random.State.make [| 5 |] in
  Alcotest.(check bool) "valid under set semantics" true
    (equivalent_set rng q rewritten);
  Alcotest.(check bool) "INVALID under bag semantics" false
    (equivalent_bag rng q rewritten)

let () =
  Alcotest.run "rewrite"
    [
      ( "rules",
        [
          Alcotest.test_case "units and idempotence" `Quick test_units;
          Alcotest.test_case "commutation" `Quick test_commutation_normalises;
          Alcotest.test_case "map fusion" `Quick test_map_fusion;
          Alcotest.test_case "selection pushdown" `Quick test_select_pushdown;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "map-fusion variable capture" `Quick
            test_map_fusion_capture;
          Alcotest.test_case "pushdown through shadowing binders" `Quick
            test_pushdown_shadowing;
        ] );
      ( "soundness",
        [
          QCheck_alcotest.to_alcotest prop_normalize_sound;
          QCheck_alcotest.to_alcotest prop_normalize_welltyped;
          QCheck_alcotest.to_alcotest prop_differential_flat;
          QCheck_alcotest.to_alcotest prop_differential_nested;
        ] );
      ( "cv93",
        [
          Alcotest.test_case "self-product projection" `Quick test_selfproduct_rule_cv93;
          Alcotest.test_case "dedup elimination" `Quick test_dedup_rule_cv93;
        ] );
    ]
