(* Differential tests for the vectorized execution engine: Veval must be
   bit-identical to the tree evaluator — same canonical Value.t, same
   multiplicities, same hash tags — on generated flat and nested queries,
   including plans that mix vec kernels with tree fallbacks (powerset,
   fixpoints, heterogeneous data).  Budget verdicts must also agree under
   tight limits, and pool-chunked kernel runs must recombine identically.

   [BALG_TEST_JOBS] (default 4) pins the domain count, as in
   test_parallel.ml; [BALG_ENGINE] is deliberately ignored here — this
   file always compares both engines explicitly. *)

open Balg
module B = Bignat
module G = Baggen.Genval

let jobs =
  match Sys.getenv_opt "BALG_TEST_JOBS" with
  | Some s -> ( try max 2 (int_of_string s) with _ -> 4)
  | None -> 4

let with_test_pool f =
  let p = Pool.create ~chunk_min:1 ~fork_min:1 ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let value = Alcotest.testable Value.pp Value.equal
let env_spec = [ ("R", 1); ("S", 2) ]

let small_config =
  { Eval.default_config with Eval.max_support = 50_000; max_count_digits = 200 }

(* Both engines under the same guard: bit-identical values (hash tags
   included) when both finish; when a budget trips, both must trip. *)
let agree inst e =
  let env = Eval.env_of_list inst in
  let tree =
    match Eval.eval ~config:small_config env e with
    | v -> Some v
    | exception Eval.Resource_limit _ -> None
  in
  let vec =
    match Veval.eval ~config:small_config env e with
    | v -> Some v
    | exception Eval.Resource_limit _ -> None
  in
  match (tree, vec) with
  | Some v, Some w -> Value.equal v w && Value.hash v = Value.hash w
  | None, None -> true
  | Some _, None | None, Some _ ->
      (* Fuel amounts differ by design, so only compare when the guard is
         about materialised size, which both engines enforce; the guarded
         configs here are support/digit bounds, so a one-sided trip is a
         real disagreement. *)
      false

let prop_flat_diff =
  QCheck.Test.make ~name:"vec == tree on generated flat queries" ~count:300
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.flat rng env_spec 4 (1 + Random.State.int rng 2) in
      let inst = Baggen.Genexpr.instance rng ~size:5 ~max_count:3 env_spec in
      agree inst e)

(* The nested generator detours through powerset-destroy and nest-unnest,
   so these plans mix vec kernels with tree fallbacks. *)
let prop_nested_diff =
  QCheck.Test.make ~name:"vec == tree on nested / fallback-mixed queries"
    ~count:300
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e =
        Baggen.Genexpr.nested rng env_spec 4 (1 + Random.State.int rng 2)
      in
      let inst = Baggen.Genexpr.instance rng ~size:4 ~max_count:2 env_spec in
      agree inst e)

(* Direct kernel coverage on random nested bags (test_bag_ref generators):
   nest/unnest/destroy/dedup and the merge family over deep values. *)
let rec random_ty rng depth =
  match Random.State.int rng (if depth = 0 then 2 else 4) with
  | 0 -> Ty.Atom
  | 1 -> Ty.Tuple [ Ty.Atom; Ty.Atom ]
  | 2 -> Ty.Bag (random_ty rng (depth - 1))
  | _ -> Ty.Tuple [ Ty.Atom; random_ty rng (depth - 1) ]

let random_bag rng ety =
  G.of_type rng ~n_atoms:3 ~width:4 ~max_count:3 (Ty.Bag ety)

let prop_kernels_on_nested_bags =
  QCheck.Test.make ~name:"vec == tree on nested-bag kernel queries" ~count:300
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let ety = Ty.Tuple [ Ty.Atom; random_ty rng 2 ] in
      let a = random_bag rng ety and b = random_bag rng ety in
      let inst = [ ("A", a); ("B", b) ] in
      let va = Expr.Var "A" and vb = Expr.Var "B" in
      let queries =
        [
          Expr.UnionAdd (va, vb);
          Expr.Diff (va, vb);
          Expr.UnionMax (va, vb);
          Expr.Inter (va, vb);
          Expr.Dedup (Expr.UnionAdd (va, va));
          Expr.Product (va, vb);
          Expr.proj_attrs [ 2; 1 ] va;
          Expr.Nest ([ 1 ], va);
          Expr.Unnest (2, Expr.Nest ([ 1 ], va));
          Expr.Destroy (Expr.Map ("x", Expr.Var "x", Expr.Sing va));
          Expr.ones va;
        ]
      in
      List.for_all (agree inst) queries)

(* to_value . of_value is the identity on canonical bags, hash included. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"Vec.of_value/to_value roundtrip" ~count:300
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let b = random_bag rng (random_ty rng 2) in
      match Vec.of_value b with
      | x ->
          let v = Vec.to_value x in
          Value.equal b v
          && Value.hash b = Value.hash v
          && Value.equal b Vec.(to_value (coalesce x))
      | exception Vec.Unsupported _ -> false)

(* Verdict equivalence under tight budgets: a fuel budget far below the
   node count exhausts both engines; a support budget below a relation's
   width trips both at the same resource. *)
let prop_tight_fuel_verdicts =
  QCheck.Test.make ~name:"tight fuel exhausts both engines" ~count:100
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.flat rng env_spec 4 (1 + Random.State.int rng 2) in
      QCheck.assume (Expr.size e > 4);
      let inst = Baggen.Genexpr.instance rng ~size:5 ~max_count:3 env_spec in
      let env = Eval.env_of_list inst in
      let limits = { Budget.unlimited with Budget.fuel = 3 } in
      let tree = Eval.run ~limits env e in
      let vec = Veval.run ~limits env e in
      match (tree, vec) with
      | Error x, Error y ->
          x.Budget.resource = Budget.Fuel && y.Budget.resource = Budget.Fuel
      | _ -> false)

let test_support_verdicts_agree () =
  let r =
    Value.bag_of_list
      [ Value.tuple [ Value.atom "a" ]; Value.tuple [ Value.atom "b" ];
        Value.tuple [ Value.atom "c" ] ]
  in
  let env = Eval.env_of_list [ ("R", r) ] in
  let q = Expr.Product (Expr.Var "R", Expr.Var "R") in
  let limits = { Budget.unlimited with Budget.max_support = 4 } in
  (match (Eval.run ~limits env q, Veval.run ~limits env q) with
  | Error x, Error y ->
      Alcotest.(check string)
        "same resource" "support"
        (Budget.resource_to_string x.Budget.resource);
      Alcotest.(check string)
        "same resource (vec)" "support"
        (Budget.resource_to_string y.Budget.resource)
  | _ -> Alcotest.fail "expected support verdicts from both engines");
  (* generous enough limits succeed identically *)
  let ok = { Budget.unlimited with Budget.max_support = 100 } in
  match (Eval.run ~limits:ok env q, Veval.run ~limits:ok env q) with
  | Ok v, Ok w -> Alcotest.check value "same product" v w
  | _ -> Alcotest.fail "expected both engines to finish"

(* Pool-chunked kernels recombine bit-identically: sequential vec ==
   pooled vec == tree, on inputs big enough that chunk_min = 1 forks. *)
let test_pool_chunks_identical () =
  with_test_pool (fun p ->
      let rng = Random.State.make [| 42 |] in
      let r =
        G.flat_bag rng ~n_atoms:8 ~arity:2 ~size:60 ~max_count:3
      in
      let env = Eval.env_of_list [ ("R", r) ] in
      let queries =
        [
          Derived.selfjoin (Expr.Var "R");
          Expr.proj_attrs [ 2 ] (Expr.Product (Expr.Var "R", Expr.Var "R"));
        ]
      in
      List.iter
        (fun q ->
          let seq =
            match Veval.run env q with Ok v -> v | Error _ -> assert false
          in
          let par =
            match Veval.run ~pool:p env q with
            | Ok v -> v
            | Error _ -> assert false
          in
          let tree =
            match Eval.run ~pool:p env q with
            | Ok v -> v
            | Error _ -> assert false
          in
          Alcotest.check value "pooled vec == sequential vec" seq par;
          Alcotest.check value "vec == tree" tree par;
          Alcotest.(check bool) "hash equal" true
            (Value.hash tree = Value.hash par))
        queries)

(* The steps == fuel invariant holds for vec runs with a telemetry sink
   attached (the --stats invariant, as in test_parallel.ml). *)
let test_steps_equal_fuel () =
  let rng = Random.State.make [| 7 |] in
  let r = G.flat_bag rng ~n_atoms:6 ~arity:2 ~size:40 ~max_count:2 in
  let env = Eval.env_of_list [ ("R", r) ] in
  let q = Derived.selfjoin (Expr.Var "R") in
  let t = Telemetry.create () in
  let budget = Budget.start Budget.default in
  (match Veval.run ~budget ~telemetry:t env q with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unexpected verdict");
  Alcotest.(check int)
    "telemetry steps == spent fuel" (Budget.fuel_spent budget)
    (Telemetry.total_steps t)

(* Fallback-mixed plan: the engine labels show vec kernels and the tree
   fallback side by side, and the result still matches the tree engine. *)
let test_plan_labels () =
  let r =
    Value.bag_of_list
      [ Value.tuple [ Value.atom "a" ]; Value.tuple [ Value.atom "b" ] ]
  in
  let env = Eval.env_of_list [ ("R", r) ] in
  let q =
    Expr.Powerset (Expr.proj_attrs [ 1 ] (Expr.Var "R"))
  in
  let plan = ref None in
  (match Veval.run ~report:(fun p -> plan := Some p) env q with
  | Ok v -> Alcotest.check value "matches tree" (Eval.eval env q) v
  | Error _ -> Alcotest.fail "unexpected verdict");
  match !plan with
  | None -> Alcotest.fail "no plan reported"
  | Some p ->
      let s = Veval.plan_to_string p in
      Alcotest.(check bool) "powerset ran on tree" true
        (p.Veval.p_engine = "tree");
      Alcotest.(check bool) "proj ran vectorized" true
        (let rec has_vec p =
           String.length p.Veval.p_engine >= 4
           && String.sub p.Veval.p_engine 0 4 = "vec:"
           || List.exists has_vec p.Veval.p_children
         in
         has_vec p);
      Alcotest.(check bool) "rendering mentions engines" true
        (String.length s > 0)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_flat_diff;
      prop_nested_diff;
      prop_kernels_on_nested_bags;
      prop_roundtrip;
      prop_tight_fuel_verdicts;
    ]

let () =
  Alcotest.run "veval"
    [
      ("vec vs tree", props);
      ( "regressions",
        [
          Alcotest.test_case "support verdicts agree" `Quick
            test_support_verdicts_agree;
          Alcotest.test_case "pool chunks identical" `Quick
            test_pool_chunks_identical;
          Alcotest.test_case "steps == fuel" `Quick test_steps_equal_fuel;
          Alcotest.test_case "plan labels" `Quick test_plan_labels;
        ] );
    ]
