(* Fuzzing: BALG^2 expressions through typecheck + eval + normalize +
   print/parse, and the lexer/parser on hostile input.  Nothing here may
   crash with anything but the documented exceptions. *)

open Balg
module Parser = Baglang.Parser
module Lexer = Baglang.Lexer

let env_spec = [ ("R", 1); ("S", 2) ]
let tenv = Typecheck.env_of_list (Baggen.Genexpr.env_types env_spec)

let small_config =
  { Eval.default_config with Eval.max_support = 50_000; max_count_digits = 200 }

let eval_guarded inst e =
  match Eval.eval ~config:small_config (Eval.env_of_list inst) e with
  | v -> Some v
  | exception Eval.Resource_limit _ -> None

(* BALG^2 expressions: always well-typed, and evaluation (when it fits the
   guard) produces a value of the inferred type *)
let prop_nested_type_soundness =
  QCheck.Test.make ~name:"BALG^2 fuzz: type soundness under guard" ~count:300
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.nested rng env_spec 4 (1 + Random.State.int rng 2) in
      let ty = Typecheck.infer tenv e in
      let inst = Baggen.Genexpr.instance rng ~size:4 ~max_count:2 env_spec in
      match eval_guarded inst e with
      | None -> true (* guard tripped: acceptable *)
      | Some v -> Value.has_type ty v)

(* normalization preserves semantics on the nested fragment too *)
let prop_nested_normalize =
  QCheck.Test.make ~name:"BALG^2 fuzz: normalize preserves semantics" ~count:200
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.nested rng env_spec 3 (1 + Random.State.int rng 2) in
      let e', _ = Rewrite.normalize tenv e in
      let inst = Baggen.Genexpr.instance rng ~size:4 ~max_count:2 env_spec in
      match (eval_guarded inst e, eval_guarded inst e') with
      | Some v, Some v' -> Value.equal v v'
      | _ -> true)

(* print/parse roundtrip on the nested fragment *)
let prop_nested_roundtrip =
  QCheck.Test.make ~name:"BALG^2 fuzz: print/parse roundtrip" ~count:300
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.nested rng env_spec 4 (1 + Random.State.int rng 2) in
      Stdlib.compare e (Parser.expr_of_string (Expr.to_string e)) = 0)

(* the analyzer never crashes and never claims BALG^1 for powerset users *)
let prop_analyze_total =
  QCheck.Test.make ~name:"analyzer total on fuzzed expressions" ~count:300
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.nested rng env_spec 4 1 in
      let r = Analyze.analyze tenv e in
      r.Analyze.bag_nesting >= 1
      && (r.Analyze.power_nesting = 0 || r.Analyze.bag_nesting >= 2))

(* tight-budget mode: every generated query runs under a starved governor
   (little fuel, small support/size caps, few fix steps) and must come back
   as Ok or a structured Error — no raw exception may escape Eval.run *)
let tight_limits =
  {
    Balg.Budget.fuel = 2_000;
    max_support = 500;
    max_size = 100_000;
    max_count_digits = 50;
    max_fix_steps = 25;
    deadline_s = Some 2.0;
  }

let prop_budget_no_escape =
  QCheck.Test.make ~name:"fuzz: no raw exception escapes a tight budget"
    ~count:300
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let e = Baggen.Genexpr.nested rng env_spec 4 (1 + Random.State.int rng 2) in
      let inst = Baggen.Genexpr.instance rng ~size:4 ~max_count:2 env_spec in
      match Eval.run ~limits:tight_limits (Eval.env_of_list inst) e with
      | Ok _ | Error _ -> true
      | exception Eval.Eval_error _ ->
          false (* generated queries are well-typed: must not happen *)
      | exception _ -> false)

(* hostile strings: the lexer/parser raise only their own exceptions *)
let prop_parser_no_crash =
  QCheck.Test.make ~name:"parser fuzz: only documented exceptions" ~count:500
    QCheck.(string_gen_of_size (Gen.int_bound 40) Gen.printable)
    (fun s ->
      match Parser.expr_of_string s with
      | _ -> true
      | exception (Parser.Parse_error _ | Lexer.Lex_error _) -> true
      | exception Failure _ -> true (* int_of_string on huge indices *))

(* hostile-but-lexable strings through the value parser *)
let prop_value_parser_no_crash =
  QCheck.Test.make ~name:"value parser fuzz" ~count:500
    QCheck.(string_gen_of_size (Gen.int_bound 40) Gen.printable)
    (fun s ->
      match Parser.value_of_string s with
      | _ -> true
      | exception (Parser.Parse_error _ | Lexer.Lex_error _) -> true
      | exception (Failure _ | Invalid_argument _) -> true)

let () =
  Alcotest.run "fuzz"
    [
      ( "fuzzing",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_nested_type_soundness;
            prop_nested_normalize;
            prop_nested_roundtrip;
            prop_analyze_total;
            prop_budget_no_escape;
            prop_parser_no_crash;
            prop_value_parser_no_crash;
          ] );
    ]
