(* Tests for the set-semantics baseline and the Prop 4.2 correspondence. *)

open Balg
module B = Bignat
module Rel = Ralg.Rel
module Reval = Ralg.Reval

let value = Alcotest.testable Value.pp Value.equal

let rel1 l = Value.bag_of_list (List.map (fun x -> Value.tuple [ Value.atom x ]) l)

let rel2 l =
  Value.bag_of_list
    (List.map (fun (x, y) -> Value.tuple [ Value.atom x; Value.atom y ]) l)

(* --- Rel ----------------------------------------------------------------- *)

let test_rel_basics () =
  let r = Rel.of_list [ Value.atom "b"; Value.atom "a"; Value.atom "b" ] in
  Alcotest.(check int) "dedup on of_list" 2 (Rel.cardinal r);
  Alcotest.(check bool) "mem" true (Rel.mem (Value.atom "a") r);
  Alcotest.(check bool) "not mem" false (Rel.mem (Value.atom "z") r);
  Alcotest.(check bool) "empty" true (Rel.is_empty Rel.empty)

let test_rel_setops () =
  let a = Rel.of_list [ Value.atom "a"; Value.atom "b" ]
  and b = Rel.of_list [ Value.atom "b"; Value.atom "c" ] in
  Alcotest.(check int) "union" 3 (Rel.cardinal (Rel.union a b));
  Alcotest.(check int) "inter" 1 (Rel.cardinal (Rel.inter a b));
  Alcotest.(check int) "diff" 1 (Rel.cardinal (Rel.diff a b));
  Alcotest.(check bool) "subset" true (Rel.subset (Rel.inter a b) a);
  Alcotest.(check int) "powerset" 4 (Rel.cardinal (Rel.powerset a))

let test_set_value_of () =
  let noisy =
    Value.bag_of_assoc
      [ (Value.bag_of_assoc [ (Value.atom "a", B.of_int 3) ], B.of_int 2) ]
  in
  let cleaned = Rel.set_value_of noisy in
  Alcotest.(check bool) "deep dedup" true (Rel.is_set_value cleaned);
  Alcotest.check value "value"
    (Value.bag_of_list [ Value.bag_of_list [ Value.atom "a" ] ])
    cleaned

(* --- Reval ---------------------------------------------------------------- *)

let ev_set ?(env = []) e = Reval.eval (Reval.env_of_list env) e

let test_reval_union_semantics () =
  let r = rel1 [ "a"; "b" ] and s = rel1 [ "b"; "c" ] in
  let env = [ ("R", r); ("S", s) ] in
  (* ∪+ and ∪max coincide on sets *)
  Alcotest.check value "additive union is set union" (rel1 [ "a"; "b"; "c" ])
    (ev_set ~env Expr.(Var "R" ++ Var "S"));
  Alcotest.check value "max union is set union" (rel1 [ "a"; "b"; "c" ])
    (ev_set ~env Expr.(Var "R" ||| Var "S"));
  (* projection does NOT create duplicates under set semantics *)
  let g = rel2 [ ("a", "b"); ("a", "c") ] in
  Alcotest.check value "projection collapses" (rel1 [ "a" ])
    (ev_set ~env:[ ("G", g) ] (Expr.proj_attrs [ 1 ] (Expr.Var "G")));
  (* the bag evaluator keeps the multiplicity 2 *)
  let bag_result =
    Eval.eval (Eval.env_of_list [ ("G", g) ]) (Expr.proj_attrs [ 1 ] (Expr.Var "G"))
  in
  Alcotest.(check string) "bag projection keeps count" "2"
    (B.to_string (Value.count_in (Value.tuple [ Value.atom "a" ]) bag_result))

let test_reval_powerbag_rejected () =
  match ev_set ~env:[ ("R", rel1 [ "a" ]) ] (Expr.Powerbag (Expr.Var "R")) with
  | exception Reval.Ralg_error _ -> ()
  | _ -> Alcotest.fail "expected Ralg_error"

let test_reval_dedup_identity () =
  let r = rel1 [ "a"; "b" ] in
  Alcotest.check value "dedup is identity on sets" r
    (ev_set ~env:[ ("R", r) ] (Expr.Dedup (Expr.Var "R")))

let test_reval_tc () =
  let g = rel2 [ ("a", "b"); ("b", "c") ] in
  Alcotest.check value "TC under set semantics"
    (rel2 [ ("a", "b"); ("b", "c"); ("a", "c") ])
    (ev_set ~env:[ ("G", g) ] (Derived.transitive_closure (Expr.Var "G")))

(* --- Proposition 4.2 ------------------------------------------------------ *)

(* For minus-free BALG^1 queries over set inputs: an element belongs to the
   bag result iff it belongs to the set result. *)
let prop42_membership =
  QCheck.Test.make ~name:"Prop 4.2: membership agrees without −" ~count:200
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let env_spec = [ ("R", 1); ("G", 2) ] in
      let e =
        Baggen.Genexpr.flat ~allow_diff:false rng env_spec 4
          (1 + Random.State.int rng 2)
      in
      (* set inputs: multiplicities all one *)
      let inst =
        List.map
          (fun (name, v) -> (name, Bag.dedup v))
          (Baggen.Genexpr.instance rng env_spec)
      in
      let bag_result = Eval.eval (Eval.env_of_list inst) e in
      let set_env = Reval.env_of_list inst in
      let set_result = Reval.eval set_env e in
      (* same support *)
      Value.equal (Bag.dedup bag_result) set_result)

(* With subtraction the correspondence breaks: a witness query.  The bag
   difference compares multiplicities which sets cannot see. *)
let test_prop42_sharpness () =
  (* π1(G) − R: under bags, duplicates from the projection survive the
     subtraction; under sets they do not. *)
  let g = rel2 [ ("a", "b"); ("a", "c") ] and r = rel1 [ "a" ] in
  let e = Expr.(Expr.proj_attrs [ 1 ] (Var "G") -- Var "R") in
  let env = [ ("G", g); ("R", r) ] in
  let bag_result = Eval.eval (Eval.env_of_list env) e in
  let set_result = Reval.eval (Reval.env_of_list env) e in
  Alcotest.(check bool) "bag result nonempty" true (Eval.truthy bag_result);
  Alcotest.(check bool) "set result empty" true (Value.is_empty_bag set_result)

let () =
  Alcotest.run "ralg"
    [
      ( "rel",
        [
          Alcotest.test_case "basics" `Quick test_rel_basics;
          Alcotest.test_case "set operations" `Quick test_rel_setops;
          Alcotest.test_case "deep set conversion" `Quick test_set_value_of;
        ] );
      ( "reval",
        [
          Alcotest.test_case "union semantics" `Quick test_reval_union_semantics;
          Alcotest.test_case "powerbag rejected" `Quick test_reval_powerbag_rejected;
          Alcotest.test_case "dedup identity" `Quick test_reval_dedup_identity;
          Alcotest.test_case "transitive closure" `Quick test_reval_tc;
          Alcotest.test_case "Prop 4.2 sharpness (−)" `Quick test_prop42_sharpness;
        ] );
      ("prop 4.2", [ QCheck_alcotest.to_alcotest prop42_membership ]);
    ]
