(* Corrupted-database fuzzing.  The loader's contract (bagdb.mli): every
   malformed input — truncation, bit flips, duplicated declarations,
   injected garbage, oversized multiplicities, I/O failure — surfaces as a
   located Db_error, never as an uncaught lexer/parser exception, a crash,
   or a silently wrong database. *)

open Balg
module Bagdb = Baglang.Bagdb

let gen_db seed =
  let rng = Random.State.make [| seed |] in
  let n = 1 + Random.State.int rng 3 in
  List.init n (fun i ->
      let arity = 1 + Random.State.int rng 2 in
      let v =
        Baggen.Genval.flat_bag rng ~n_atoms:4 ~arity
          ~size:(1 + Random.State.int rng 6)
          ~max_count:3
      in
      (Printf.sprintf "b%d" i, Ty.relation arity, v))

(* One random corruption; composed twice in the property below. *)
let mutate rng s =
  let n = String.length s in
  if n = 0 then s
  else
    match Random.State.int rng 5 with
    | 0 -> String.sub s 0 (Random.State.int rng n) (* truncate *)
    | 1 ->
        (* flip one bit *)
        let b = Bytes.of_string s in
        let i = Random.State.int rng n in
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Random.State.int rng 7)));
        Bytes.to_string b
    | 2 ->
        (* duplicate a line (duplicate bag names must be rejected) *)
        let lines = String.split_on_char '\n' s in
        let i = Random.State.int rng (List.length lines) in
        lines
        |> List.mapi (fun j l -> if j = i then [ l; l ] else [ l ])
        |> List.concat |> String.concat "\n"
    | 3 ->
        (* insert garbage bytes *)
        let i = Random.State.int rng (n + 1) in
        String.sub s 0 i ^ "\x00{<!" ^ String.sub s i (n - i)
    | _ ->
        (* delete one byte *)
        let i = Random.State.int rng n in
        String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)

let prop_mutated_parse_total =
  QCheck.Test.make
    ~name:"mutated .bagdb parses or raises located Db_error, nothing else"
    ~count:800
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let source = Bagdb.render (gen_db seed) in
      let s = mutate rng (mutate rng source) in
      (* any other exception escapes and fails the property *)
      match Bagdb.parse s with
      | _ -> true
      | exception Bagdb.Db_error e ->
          e.Bagdb.offset >= 0
          && e.Bagdb.offset <= String.length s
          && String.length e.Bagdb.reason > 0)

let test_valid_roundtrip () =
  let db = gen_db 1234 in
  let db' = Bagdb.parse (Bagdb.render db) in
  Alcotest.(check int) "same decl count" (List.length db) (List.length db');
  List.iter2
    (fun (n, ty, v) (n', ty', v') ->
      Alcotest.(check string) "name" n n';
      Alcotest.(check bool) "type" true (ty = ty');
      Alcotest.(check bool) "value" true (Value.equal v v'))
    db db'

let test_duplicate_names_rejected () =
  let source = "bag r : {{<U>}} = {{ <'a> }}\nbag r : {{<U>}} = {{ <'b> }}" in
  match Bagdb.parse source with
  | _ -> Alcotest.fail "duplicate bag names must be rejected"
  | exception Bagdb.Db_error e ->
      Alcotest.(check bool) "reason mentions duplicate" true
        (String.length e.Bagdb.reason > 0)

(* The located regression for the duplicate diagnostic: the reported
   offset must fall inside the SECOND (offending) definition's span —
   specifically at its name token — not at the first definition or at the
   end of input.  Layout below: the first decl spans [0,28), the newline
   is 28, the second decl starts at 29 and its name token 'r' sits at
   offset 33 ("bag " is 4 bytes). *)
let test_duplicate_offset_in_second_span () =
  let first = "bag r : {{<U>}} = {{ <'a> }}" in
  let second = "bag r : {{<U>}} = {{ <'b> }}" in
  let source = first ^ "\n" ^ second in
  let second_start = String.length first + 1 in
  match Bagdb.parse source with
  | _ -> Alcotest.fail "duplicate bag names must be rejected"
  | exception Bagdb.Db_error e ->
      Alcotest.(check bool) "offset inside the second definition" true
        (e.Bagdb.offset >= second_start
        && e.Bagdb.offset < String.length source);
      Alcotest.(check int) "offset is the offending name token"
        (second_start + 4) e.Bagdb.offset

let test_oversized_count_rejected () =
  let huge =
    Value.bag_of_assoc
      [ (Value.tuple [ Value.atom "a" ], Bignat.of_string (String.make 101 '9')) ]
  in
  let source = Bagdb.render [ ("b", Ty.relation 1, huge) ] in
  (match Bagdb.parse ~max_count_digits:100 source with
  | _ -> Alcotest.fail "101-digit multiplicity must be rejected"
  | exception Bagdb.Db_error _ -> ());
  (* under a roomier limit the same input is fine *)
  match Bagdb.parse ~max_count_digits:200 source with
  | db -> Alcotest.(check int) "loads under roomier limit" 1 (List.length db)
  | exception Bagdb.Db_error e ->
      Alcotest.failf "unexpected rejection: %s" (Bagdb.error_to_string e)

(* --- file-level loads ------------------------------------------------------- *)

let with_temp content f =
  let path = Filename.temp_file "balg_fuzz" ".bagdb" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc content);
      f path)

let test_load_roundtrip () =
  let db = gen_db 42 in
  with_temp (Bagdb.render db) (fun path ->
      let db' = Bagdb.load path in
      Alcotest.(check int) "same decl count" (List.length db)
        (List.length db'))

let test_load_missing_file () =
  match Bagdb.load "/nonexistent/path/xyz.bagdb" with
  | _ -> Alcotest.fail "expected Db_error"
  | exception Bagdb.Db_error e ->
      Alcotest.(check bool) "error names the path" true
        (e.Bagdb.path = Some "/nonexistent/path/xyz.bagdb")

let test_load_under_injected_short_read () =
  (* the bagdb.load fault site truncates the content at a deterministic
     offset: each load must end in a database or a Db_error, and the same
     seed must replay the same outcome *)
  let source = Bagdb.render (gen_db 99) in
  with_temp source (fun path ->
      let outcome seed =
        Fault.with_faults ~seed "bagdb.load:always" (fun () ->
            match Bagdb.load path with
            | db -> Ok (List.length db)
            | exception Bagdb.Db_error e -> Error e.Bagdb.offset)
      in
      List.iter
        (fun seed ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d deterministic" seed)
            true
            (outcome seed = outcome seed))
        [ 1; 2; 3; 4; 5; 6; 7; 8 ])

let () =
  Alcotest.run "bagdb_fuzz"
    [
      ( "parse",
        [
          QCheck_alcotest.to_alcotest prop_mutated_parse_total;
          Alcotest.test_case "valid roundtrip" `Quick test_valid_roundtrip;
          Alcotest.test_case "duplicate names rejected" `Quick
            test_duplicate_names_rejected;
          Alcotest.test_case "duplicate offset in second span" `Quick
            test_duplicate_offset_in_second_span;
          Alcotest.test_case "oversized multiplicity rejected" `Quick
            test_oversized_count_rejected;
        ] );
      ( "load",
        [
          Alcotest.test_case "file roundtrip" `Quick test_load_roundtrip;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
          Alcotest.test_case "injected short read" `Quick
            test_load_under_injected_short_read;
        ] );
    ]
