(* Tests for the §7 nest/unnest extension: semantics, typing, the
   definability oracle (nest via MAP), the unnest-nest identity, grouping
   aggregates, and set-vs-bag behaviour. *)

open Balg
module B = Bignat
module Reval = Ralg.Reval

let value = Alcotest.testable Value.pp Value.equal
let ty = Alcotest.testable Ty.pp Ty.equal

let t2 x y = Value.tuple [ Value.atom x; Value.atom y ]

let sales =
  Value.bag_of_assoc
    [
      (t2 "ada" "widget", B.of_int 3);
      (t2 "ada" "gadget", B.one);
      (t2 "bob" "widget", B.of_int 2);
    ]

let ev ?(env = []) e = Eval.eval (Eval.env_of_list env) e
let lit2 = Expr.lit sales (Ty.relation 2)

let test_nest_semantics () =
  let nested = ev (Expr.Nest ([ 1 ], lit2)) in
  Alcotest.(check int) "two groups" 2 (Value.support_size nested);
  let ada_group =
    Value.tuple
      [
        Value.atom "ada";
        Value.bag_of_assoc
          [
            (Value.tuple [ Value.atom "widget" ], B.of_int 3);
            (Value.tuple [ Value.atom "gadget" ], B.one);
          ];
      ]
  in
  Alcotest.(check string) "ada group occurs once" "1"
    (B.to_string (Value.count_in ada_group nested));
  (* nesting on both attributes leaves empty-tuple groups *)
  let both = ev (Expr.Nest ([ 1; 2 ], lit2)) in
  Alcotest.(check int) "three groups on full key" 3 (Value.support_size both)

let test_nest_typing () =
  let tenv = Typecheck.env_of_list [ ("S", Ty.relation 2) ] in
  Alcotest.check ty "nest type"
    (Ty.Bag (Ty.Tuple [ Ty.Atom; Ty.Bag (Ty.Tuple [ Ty.Atom ]) ]))
    (Typecheck.infer tenv (Expr.Nest ([ 1 ], Expr.Var "S")));
  Alcotest.(check int) "nest raises bag nesting to 2" 2
    (Typecheck.max_nesting tenv (Expr.Nest ([ 1 ], Expr.Var "S")));
  let expect_err f =
    match f () with
    | exception Typecheck.Type_error _ -> ()
    | _ -> Alcotest.fail "expected Type_error"
  in
  expect_err (fun () -> Typecheck.infer tenv (Expr.Nest ([], Expr.Var "S")));
  expect_err (fun () -> Typecheck.infer tenv (Expr.Nest ([ 3 ], Expr.Var "S")));
  expect_err (fun () -> Typecheck.infer tenv (Expr.Nest ([ 1; 1 ], Expr.Var "S")));
  expect_err (fun () -> Typecheck.infer tenv (Expr.Unnest (1, Expr.Var "S")))

let test_unnest_semantics () =
  let nested = ev (Expr.Nest ([ 1 ], lit2)) in
  let flat =
    ev (Expr.Unnest (2, Expr.lit nested
                          (Ty.Bag (Ty.Tuple [ Ty.Atom; Ty.Bag (Ty.Tuple [ Ty.Atom ]) ]))))
  in
  Alcotest.check value "unnest undoes nest" sales flat

let test_unnest_multiplicities () =
  (* outer count 2 x inner count 3 = 6 *)
  let inner = Value.bag_of_assoc [ (Value.tuple [ Value.atom "x" ], B.of_int 3) ] in
  let outer =
    Value.bag_of_assoc [ (Value.tuple [ Value.atom "k"; inner ], B.of_int 2) ]
  in
  let t = Ty.Bag (Ty.Tuple [ Ty.Atom; Ty.Bag (Ty.Tuple [ Ty.Atom ]) ]) in
  let flat = ev (Expr.Unnest (2, Expr.lit outer t)) in
  Alcotest.(check string) "counts multiply" "6"
    (B.to_string (Value.count_in (t2 "k" "x") flat))

let test_group_count () =
  let counts = ev (Derived.group_count [ 1 ] lit2) in
  let expect who n =
    Alcotest.(check string)
      (who ^ " count")
      "1"
      (B.to_string
         (Value.count_in (Value.tuple [ Value.atom who; Value.nat n ]) counts))
  in
  expect "ada" 4;
  expect "bob" 2

let test_group_sum () =
  (* <customer, amount-as-integer-bag> *)
  let row c n = Value.tuple [ Value.atom c; Value.nat n ] in
  let ledger =
    Value.bag_of_assoc
      [ (row "ada" 5, B.of_int 2); (row "ada" 1, B.one); (row "bob" 7, B.one) ]
  in
  let t = Ty.Bag (Ty.Tuple [ Ty.Atom; Ty.nat ]) in
  let sums = ev (Derived.group_sum [ 1 ] ~of_:2 ~arity:2 (Expr.lit ledger t)) in
  (* ada: 5*2 + 1 = 11 *)
  Alcotest.(check string) "ada sum" "1"
    (B.to_string (Value.count_in (Value.tuple [ Value.atom "ada"; Value.nat 11 ]) sums));
  Alcotest.(check string) "bob sum" "1"
    (B.to_string (Value.count_in (Value.tuple [ Value.atom "bob"; Value.nat 7 ]) sums))

(* nest is definable from MAP + select + dedup (§7): the built-in operator
   agrees with the derived form on random bags *)
let prop_nest_via_map =
  QCheck.Test.make ~name:"Nest == nest_via_map (§7 definability)" ~count:200
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let arity = 2 + Random.State.int rng 2 in
      let bag = Baggen.Genval.flat_bag rng ~n_atoms:3 ~arity ~size:6 ~max_count:3 in
      let n_keys = 1 + Random.State.int rng (arity - 1) in
      let ixs = List.init n_keys (fun i -> i + 1) in
      let e = Expr.lit bag (Ty.relation arity) in
      Value.equal
        (ev (Expr.Nest (ixs, e)))
        (ev (Derived.nest_via_map ixs ~arity e)))

(* unnest . nest with prefix keys is the identity (and the rewriter knows) *)
let prop_unnest_nest_identity =
  QCheck.Test.make ~name:"unnest(nest) = id, and the rewrite fires" ~count:200
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let arity = 2 + Random.State.int rng 2 in
      let bag = Baggen.Genval.flat_bag rng ~n_atoms:3 ~arity ~size:6 ~max_count:3 in
      let n_keys = 1 + Random.State.int rng (arity - 1) in
      let ixs = List.init n_keys (fun i -> i + 1) in
      let e = Expr.lit bag (Ty.relation arity) in
      let round = Expr.Unnest (n_keys + 1, Expr.Nest (ixs, e)) in
      let tenv = Typecheck.env_of_list [] in
      let normalized, log = Rewrite.normalize tenv round in
      Value.equal (ev round) bag
      && Stdlib.compare normalized e = 0
      && List.mem "unnest-nest" log)

let test_parser_roundtrip () =
  let e = Expr.Unnest (2, Expr.Nest ([ 1 ], Expr.Var "S")) in
  let s = Expr.to_string e in
  Alcotest.(check bool) "roundtrips" true
    (Stdlib.compare e (Baglang.Parser.expr_of_string s) = 0);
  Alcotest.(check string) "syntax" "unnest[2](nest[1](S))" s

let test_set_semantics_nest () =
  (* under set semantics the groups are sets: duplicates inside vanish *)
  let set_nested = Reval.eval (Reval.env_of_list [ ("S", sales) ]) (Expr.Nest ([ 1 ], Expr.Var "S")) in
  let bag_nested = ev (Expr.Nest ([ 1 ], lit2)) in
  Alcotest.(check bool) "same group count" true
    (Value.support_size set_nested = Value.support_size bag_nested);
  Alcotest.(check bool) "bag groups hold duplicates, set groups do not" true
    (not (Value.equal set_nested bag_nested))

let test_analyze_nest () =
  let tenv = Typecheck.env_of_list [ ("S", Ty.relation 2) ] in
  let r = Analyze.analyze tenv (Expr.Nest ([ 1 ], Expr.Var "S")) in
  Alcotest.(check (list (pair string int))) "census sees nest"
    [ ("nest", 1); ("var", 1) ] r.Analyze.census;
  (* nest does not use the powerset: power nesting stays 0 — the §7 point *)
  Alcotest.(check int) "no power nesting" 0 r.Analyze.power_nesting;
  Alcotest.(check bool) "still PSPACE-classified (nesting 2)" true
    (r.Analyze.cclass = Analyze.Pspace)

let () =
  Alcotest.run "nest"
    [
      ( "semantics",
        [
          Alcotest.test_case "nest" `Quick test_nest_semantics;
          Alcotest.test_case "typing" `Quick test_nest_typing;
          Alcotest.test_case "unnest" `Quick test_unnest_semantics;
          Alcotest.test_case "unnest multiplicities" `Quick test_unnest_multiplicities;
          Alcotest.test_case "group count" `Quick test_group_count;
          Alcotest.test_case "group sum" `Quick test_group_sum;
          Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
          Alcotest.test_case "set semantics" `Quick test_set_semantics_nest;
          Alcotest.test_case "analysis" `Quick test_analyze_nest;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_nest_via_map;
          QCheck_alcotest.to_alcotest prop_unnest_nest_identity;
        ] );
    ]
