(* The error-path exit-code contract of the balgi CLI, pinned across the
   full engine x optimizer matrix: a parse error, a database error and a
   type error exit with code 1, a budget verdict with 2 — identically on
   --engine tree|vec and --optimize off|rules|cost, with the same stderr
   shape.  A plan-level divergence (say, the vec engine or the cost
   optimizer turning a verdict into a crash) shows up here as a matrix
   cell with the wrong code or the wrong diagnostic class. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* dune runs tests with cwd = _build/default/test, so the sibling binary
   is one directory up; the later candidates cover running the test
   executable from the repo root by hand *)
let balgi =
  List.find_opt Sys.file_exists
    [ "../bin/balgi.exe"; "_build/default/bin/balgi.exe"; "bin/balgi.exe" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_balgi args =
  match balgi with
  | None -> Alcotest.fail "balgi.exe not built (expected at ../bin/balgi.exe)"
  | Some exe ->
      let out = Filename.temp_file "balgi_out" ".txt" in
      let err = Filename.temp_file "balgi_err" ".txt" in
      let cmd =
        Printf.sprintf "%s %s >%s 2>%s" (Filename.quote exe)
          (String.concat " " (List.map Filename.quote args))
          (Filename.quote out) (Filename.quote err)
      in
      let code = Sys.command cmd in
      let stdout_s = read_file out and stderr_s = read_file err in
      Sys.remove out;
      Sys.remove err;
      (code, stdout_s, stderr_s)

(* stderr "shape": which diagnostic family the run produced *)
let classify err =
  (* order matters: a database error's reason can itself embed a
     parse/lex diagnostic from the validating loader *)
  if contains err "database error" then "db"
  else if contains err "parse error" || contains err "lex error" then "parse"
  else if contains err "type error" then "type"
  else if contains err "budget exhausted" then "verdict"
  else if contains err "tractability guard" then "guard"
  else if contains err "evaluation error" then "eval"
  else "other: " ^ String.trim err

let combos =
  [
    ("tree", "off");
    ("tree", "rules");
    ("tree", "cost");
    ("vec", "off");
    ("vec", "rules");
    ("vec", "cost");
  ]

let with_temp content f =
  let path = Filename.temp_file "exitcodes" ".bagdb" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

let matrix name args_of want_code want_class =
  List.iter
    (fun (engine, opt) ->
      let cell = Printf.sprintf "%s @ --engine %s --optimize %s" name engine opt in
      let code, _, err = run_balgi (args_of engine opt) in
      Alcotest.(check int) (cell ^ ": exit code") want_code code;
      Alcotest.(check string) (cell ^ ": stderr shape") want_class (classify err))
    combos

let test_parse_error_matrix () =
  matrix "parse error"
    (fun engine opt ->
      [ "eval"; "--engine"; engine; "--optimize"; opt; "R ++" ])
    1 "parse"

let test_db_error_matrix () =
  with_temp "bag R : {{<U>}} = {{ <'a\nthis is not a bagdb file" (fun db ->
      matrix "db error"
        (fun engine opt ->
          [ "eval"; "-d"; db; "--engine"; engine; "--optimize"; opt; "R" ])
        1 "db")

let test_type_error_matrix () =
  with_temp "bag R : {{<U>}} = {{ <'a>, <'b> }}" (fun db ->
      matrix "type error"
        (fun engine opt ->
          [ "eval"; "-d"; db; "--engine"; engine; "--optimize"; opt; "Zebra" ])
        1 "type")

let test_verdict_matrix () =
  with_temp "bag R : {{<U>}} = {{ <'a>, <'b>, <'c> }}" (fun db ->
      matrix "budget verdict"
        (fun engine opt ->
          [
            "eval"; "-d"; db; "--fuel"; "5"; "--engine"; engine; "--optimize";
            opt; "powerset(R ++ R)";
          ])
        2 "verdict")

(* the success column of the matrix, as a control: same result text and
   a zero exit everywhere *)
let test_success_matrix () =
  with_temp "bag R : {{<U>}} = {{ <'a>, <'b>:2 }}" (fun db ->
      let outputs =
        List.map
          (fun (engine, opt) ->
            let code, out, err =
              run_balgi
                [ "eval"; "-d"; db; "--engine"; engine; "--optimize"; opt; "R ++ R" ]
            in
            Alcotest.(check int)
              (Printf.sprintf "success exit @ %s/%s" engine opt)
              0 code;
            Alcotest.(check string)
              (Printf.sprintf "empty stderr @ %s/%s: %s" engine opt err)
              "" err;
            out)
          combos
      in
      match outputs with
      | [] -> ()
      | first :: rest ->
          List.iter
            (Alcotest.(check string) "bit-identical output across the matrix"
               first)
            rest)

let () =
  Alcotest.run "exitcodes"
    [
      ( "matrix",
        [
          Alcotest.test_case "parse error" `Quick test_parse_error_matrix;
          Alcotest.test_case "db error" `Quick test_db_error_matrix;
          Alcotest.test_case "type error" `Quick test_type_error_matrix;
          Alcotest.test_case "budget verdict" `Quick test_verdict_matrix;
          Alcotest.test_case "success control" `Quick test_success_matrix;
        ] );
    ]
