(* The balgd server stack, in-process: the store's COW snapshots, WAL
   persistence and torn-tail recovery, the result cache, the
   admission-controlled executor (including the deadline-vs-queue-wait
   regression the Budget create/arm split exists for), and the protocol
   server end to end — concurrent sessions differentially checked against
   direct library evaluation, under injected faults when BALG_FAULT asks
   for chaos. *)

open Balg
module Parser = Baglang.Parser
module Bagdb = Baglang.Bagdb
module Store = Balgserver.Store
module Cache = Balgserver.Cache
module Exec = Balgserver.Exec
module Server = Balgserver.Server
module Client = Balgserver.Client
module Frame = Balgserver.Frame
module Repl = Balgserver.Repl

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let seed_src =
  "bag R : {{<U>}} = {{ <'a>, <'b>:2, <'c> }}\n\
   bag G : {{<U, U>}} = {{ <'a,'b>, <'b,'c> }}"

let seed () = Bagdb.parse seed_src

let rel1_of names =
  Value.bag_of_list (List.map (fun n -> Value.tuple [ Value.atom n ]) names)

let graph =
  Value.bag_of_list
    [
      Value.tuple [ Value.atom "a"; Value.atom "b" ];
      Value.tuple [ Value.atom "b"; Value.atom "c" ];
    ]

let temp_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "balg_server_test_%d_%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let wait_until ?(timeout_s = 10.0) ?(what = "condition") pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () >= deadline then
      Alcotest.fail ("timed out waiting for " ^ what)
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

(* --- frames ---------------------------------------------------------------- *)

let test_frame_roundtrip () =
  let line = Frame.encode ~seq:7 "bag Z : {{<U>}} = {{ <'z> }}" in
  Alcotest.(check bool) "newline-terminated" true
    (line.[String.length line - 1] = '\n');
  (match Frame.decode_line (String.sub line 0 (String.length line - 1)) with
  | Ok r ->
      Alcotest.(check int) "seq survives" 7 r.Frame.seq;
      Alcotest.(check string) "payload survives"
        "bag Z : {{<U>}} = {{ <'z> }}" r.Frame.payload
  | Error m -> Alcotest.fail ("roundtrip: " ^ m));
  (* decode_at over a concatenation walks frame boundaries *)
  let two = Frame.encode ~seq:1 "drop A" ^ Frame.encode ~seq:2 "drop B" in
  (match Frame.decode_at two ~pos:0 with
  | Ok (r, next) ->
      Alcotest.(check int) "first frame" 1 r.Frame.seq;
      (match Frame.decode_at two ~pos:next with
      | Ok (r2, next2) ->
          Alcotest.(check int) "second frame" 2 r2.Frame.seq;
          Alcotest.(check int) "consumed exactly" (String.length two) next2
      | Error _ -> Alcotest.fail "second frame must decode")
  | Error _ -> Alcotest.fail "first frame must decode");
  match Frame.encode ~seq:1 "two\nlines" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "a payload with a newline must be rejected"

(* The gate a follower runs on every shipped line, and recovery on every
   stored one: a single flipped bit in a parseable record must fail the
   CRC, not slip through the parser. *)
let test_frame_bit_flip () =
  let line = Frame.encode ~seq:3 "bag Z : {{<U>}} = {{ <'z> }}" in
  let line = String.sub line 0 (String.length line - 1) in
  let i = String.length line - 3 in
  let flipped =
    String.mapi
      (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c)
      line
  in
  (match Frame.decode_line flipped with
  | Error m -> Alcotest.(check bool) "names the crc" true (contains m "crc")
  | Ok _ -> Alcotest.fail "a bit-flipped payload must fail the CRC");
  (* a truncated payload is a length mismatch, not a parse accident *)
  (match Frame.decode_line (String.sub line 0 (String.length line - 4)) with
  | Error m ->
      Alcotest.(check bool) "names the length" true
        (contains m "length" || contains m "crc")
  | Ok _ -> Alcotest.fail "a short payload must be rejected");
  (* garbage before the header *)
  match Frame.decode_line ("x" ^ line) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a mangled header must be rejected"

let test_frame_torn () =
  let whole = Frame.encode ~seq:1 "drop A" in
  let torn = String.sub whole 0 (String.length whole - 3) in
  match Frame.decode_at torn ~pos:0 with
  | Error `Torn -> ()
  | Error (`Corrupt m) -> Alcotest.fail ("torn read as corrupt: " ^ m)
  | Ok _ -> Alcotest.fail "an unterminated frame must read as torn"

(* --- store ----------------------------------------------------------------- *)

let test_store_cow () =
  let st = Store.open_store ~dir:None ~seed:(seed ()) () in
  let before = Store.snapshot st in
  (match Store.apply st (Store.Def ("Z", Ty.relation 1, rel1_of [ "z" ])) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* the old snapshot is immutable: a request that captured it keeps
     evaluating against it no matter what writes land meanwhile *)
  Alcotest.(check int) "captured snapshot unchanged" 2 (List.length before);
  Alcotest.(check int) "new snapshot sees the write" 3
    (List.length (Store.snapshot st));
  Alcotest.(check int) "revision bumped" 1 (Store.revision st);
  (match Store.apply st (Store.Drop "Z") with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "drop published" 2 (List.length (Store.snapshot st));
  (match Store.apply st (Store.Drop "nope") with
  | Ok () -> Alcotest.fail "dropping an unknown bag must fail"
  | Error _ -> ());
  Store.close st

let test_store_wal_roundtrip () =
  let dir = temp_dir () in
  let st = Store.open_store ~dir:(Some dir) ~seed:(seed ()) () in
  (match Store.apply st (Store.Def ("Z", Ty.relation 1, rel1_of [ "z" ])) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Store.apply st (Store.Drop "G") with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let before = Bagdb.render (Store.snapshot st) in
  Store.close st;
  (* restart: snapshot + WAL replay must land on the identical database *)
  let st2 = Store.open_store ~dir:(Some dir) () in
  Alcotest.(check string) "recovered byte-identical" before
    (Bagdb.render (Store.snapshot st2));
  Alcotest.(check int) "replayed both records" 2 (Store.recovered_records st2);
  Alcotest.(check int) "nothing truncated" 0 (Store.truncated_bytes st2);
  Store.close st2

let test_store_torn_tail () =
  let dir = temp_dir () in
  let st = Store.open_store ~dir:(Some dir) ~seed:(seed ()) () in
  (match Store.apply st (Store.Def ("Z", Ty.relation 1, rel1_of [ "z" ])) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let before = Bagdb.render (Store.snapshot st) in
  Store.close st;
  (* a kill mid-append leaves a torn record: recovery must stop at the
     surviving prefix and truncate the tail, not reject the whole log *)
  let oc =
    open_out_gen [ Open_append ] 0o644 (Filename.concat dir "wal.log")
  in
  output_string oc "bag Q : {{<U>}} = {{ <'q";
  close_out oc;
  let st2 = Store.open_store ~dir:(Some dir) () in
  Alcotest.(check string) "prefix state recovered" before
    (Bagdb.render (Store.snapshot st2));
  Alcotest.(check int) "one surviving record" 1 (Store.recovered_records st2);
  Alcotest.(check bool) "torn tail measured" true
    (Store.truncated_bytes st2 > 0);
  Store.close st2;
  (* the tail is gone from disk: a further restart is clean *)
  let st3 = Store.open_store ~dir:(Some dir) () in
  Alcotest.(check int) "second restart truncates nothing" 0
    (Store.truncated_bytes st3);
  Alcotest.(check string) "state stable across restarts" before
    (Bagdb.render (Store.snapshot st3));
  Store.close st3

let test_store_wal_append_fault () =
  let dir = temp_dir () in
  let st = Store.open_store ~dir:(Some dir) ~seed:(seed ()) () in
  (match Store.apply st (Store.Def ("Z", Ty.relation 1, rel1_of [ "z" ])) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let before = Bagdb.render (Store.snapshot st) in
  Fault.with_faults ~seed:1 "wal.append:always" (fun () ->
      match Store.apply st (Store.Def ("Q", Ty.relation 1, rel1_of [ "q" ])) with
      | Ok () -> Alcotest.fail "a torn append must not publish"
      | Error _ -> ());
  Alcotest.(check string) "published contents unchanged" before
    (Bagdb.render (Store.snapshot st));
  Alcotest.(check bool) "store went read-only" true (Store.read_only st);
  (match Store.apply st (Store.Def ("Q2", Ty.relation 1, rel1_of [ "q" ])) with
  | Ok () -> Alcotest.fail "read-only store must reject writes"
  | Error m -> Alcotest.(check bool) "says read-only" true (contains m "read-only"));
  Store.close st;
  (* restart: the torn record is dropped, landing on the pre-fault state *)
  let st2 = Store.open_store ~dir:(Some dir) () in
  Alcotest.(check string) "recovery lands on pre-fault state" before
    (Bagdb.render (Store.snapshot st2));
  Alcotest.(check bool) "torn record dropped" true
    (Store.truncated_bytes st2 > 0);
  Alcotest.(check bool) "writable again after restart" true
    (not (Store.read_only st2));
  Store.close st2

let test_store_compact () =
  let dir = temp_dir () in
  let st = Store.open_store ~dir:(Some dir) ~seed:(seed ()) () in
  (match Store.apply st (Store.Def ("Z", Ty.relation 1, rel1_of [ "z" ])) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "wal non-empty before compact" true
    (Store.wal_size st > 0);
  (match Store.compact st with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check int) "wal empty after compact" 0 (Store.wal_size st);
  let before = Bagdb.render (Store.snapshot st) in
  Store.close st;
  let st2 = Store.open_store ~dir:(Some dir) () in
  Alcotest.(check string) "compacted snapshot is the whole state" before
    (Bagdb.render (Store.snapshot st2));
  Alcotest.(check int) "no wal records to replay" 0
    (Store.recovered_records st2);
  Store.close st2

(* Satellite (d): a bit-flipped record in the MIDDLE of the log — still
   perfectly parseable as text — must be caught by the CRC, and replay
   must truncate at that frame: the records behind it are gone too,
   because a log with a corrupt middle has no trustworthy suffix. *)
let test_store_crc_bit_flip () =
  let dir = temp_dir () in
  let st = Store.open_store ~dir:(Some dir) ~seed:(seed ()) () in
  List.iter
    (fun n ->
      match Store.apply st (Store.Def (n, Ty.relation 1, rel1_of [ "x" ])) with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    [ "Z"; "W"; "V" ];
  Store.close st;
  let wal = Filename.concat dir "wal.log" in
  let content = read_file wal in
  (* flip one character inside the SECOND frame's payload: 'x' -> 'y'
     keeps the record parseable, so only the checksum can object *)
  let lines = String.split_on_char '\n' content in
  let second = List.nth lines 1 in
  let i = String.rindex second 'x' in
  let flipped =
    String.mapi (fun j c -> if j = i then 'y' else c) second
  in
  write_file wal
    (String.concat "\n"
       (List.mapi (fun k l -> if k = 1 then flipped else l) lines));
  let st2 = Store.open_store ~dir:(Some dir) () in
  Alcotest.(check int) "replay stops after the first record" 1
    (Store.recovered_records st2);
  Alcotest.(check bool) "corruption detected, not read as torn" true
    (Store.corruption_detected st2);
  Alcotest.(check bool) "corrupt tail measured" true
    (Store.truncated_bytes st2 > 0);
  Alcotest.(check bool) "state is the surviving prefix" true
    (List.exists (fun (n, _, _) -> n = "Z") (Store.snapshot st2)
    && not (List.exists (fun (n, _, _) -> n = "W") (Store.snapshot st2)));
  Alcotest.(check int) "offset is the surviving prefix's" 1
    (Store.log_seq st2);
  Store.close st2;
  (* the corrupt tail was truncated from disk: the next restart is clean *)
  let st3 = Store.open_store ~dir:(Some dir) () in
  Alcotest.(check bool) "second restart sees no corruption" false
    (Store.corruption_detected st3);
  Alcotest.(check int) "second restart truncates nothing" 0
    (Store.truncated_bytes st3);
  Store.close st3

(* The replication surface of the store, without any server: bootstrap
   snapshot at offset 0, framed catch-up records after it, idempotent
   duplicate delivery, gap detection, and byte-compatible follower logs. *)
let test_store_replication_api () =
  let pdir = temp_dir () and fdir = temp_dir () in
  let p = Store.open_store ~dir:(Some pdir) ~seed:(seed ()) () in
  List.iter
    (fun n ->
      match Store.apply p (Store.Def (n, Ty.relation 1, rel1_of [ "x" ])) with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    [ "Z"; "W"; "V" ];
  (* a fresh follower (offset 0) must get a snapshot, never records: the
     records apply on top of the seed, which it does not have *)
  let f = Store.open_store ~dir:(Some fdir) () in
  (match Store.read_from p ~after:0 with
  | `Records _ -> Alcotest.fail "offset 0 must bootstrap via snapshot"
  | `Snapshot (db, sq) -> (
      Alcotest.(check int) "snapshot at the primary's offset" 3 sq;
      match Store.install_snapshot f db ~seq:sq with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("install: " ^ m)));
  Alcotest.(check string) "bootstrap lands on identical contents"
    (Bagdb.render (Store.snapshot p))
    (Bagdb.render (Store.snapshot f));
  Alcotest.(check int) "follower offset advanced" 3 (Store.log_seq f);
  (* two more primary writes ship as framed records *)
  (match Store.apply p (Store.Drop "W") with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Store.apply p (Store.Def ("Q", Ty.relation 1, rel1_of [ "q" ])) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Store.read_from p ~after:(Store.log_seq f) with
  | `Snapshot _ -> Alcotest.fail "tail still covers offset 3"
  | `Records rs ->
      Alcotest.(check int) "two records to ship" 2 (List.length rs);
      List.iter
        (fun (sq, payload) ->
          match Store.op_of_payload payload with
          | Error m -> Alcotest.fail ("op_of_payload: " ^ m)
          | Ok op -> (
              match Store.apply_replicated f ~seq:sq op with
              | Ok () -> ()
              | Error m -> Alcotest.fail ("apply_replicated: " ^ m)))
        rs;
      (* duplicate delivery (a resync overlap) is a no-op, not an error *)
      (match rs with
      | (sq, payload) :: _ -> (
          match Store.apply_replicated f ~seq:sq
                  (Result.get_ok (Store.op_of_payload payload))
          with
          | Ok () -> ()
          | Error m -> Alcotest.fail ("duplicate must be ok: " ^ m))
      | [] -> assert false));
  Alcotest.(check string) "caught up byte-identical"
    (Bagdb.render (Store.snapshot p))
    (Bagdb.render (Store.snapshot f));
  (* a sequence gap must be refused: the follower has to resync *)
  (match
     Store.apply_replicated f ~seq:(Store.log_seq f + 2)
       (Store.Def ("G2", Ty.relation 1, rel1_of [ "g" ]))
   with
  | Error m -> Alcotest.(check bool) "names the gap" true (contains m "gap")
  | Ok () -> Alcotest.fail "a gap must be an error");
  (* byte compatibility: the frames the follower appended are literally
     the primary's log tail — a promoted follower's WAL needs no rewrite *)
  let pwal = read_file (Filename.concat pdir "wal.log") in
  let fwal = read_file (Filename.concat fdir "wal.log") in
  Alcotest.(check bool) "follower log is a suffix of the primary's" true
    (String.length fwal > 0
    && String.length pwal >= String.length fwal
    && String.equal fwal
         (String.sub pwal
            (String.length pwal - String.length fwal)
            (String.length fwal)));
  (* after the primary compacts, a lagging offset forces a snapshot *)
  (match Store.compact p with Ok () -> () | Error m -> Alcotest.fail m);
  (match Store.read_from p ~after:1 with
  | `Snapshot _ -> ()
  | `Records _ -> Alcotest.fail "compaction folded offset 1 away");
  Store.close p;
  Store.close f

(* --- cache ----------------------------------------------------------------- *)

let test_cache_basics () =
  let db = seed () in
  let c = Cache.create ~capacity:2 () in
  let e = Parser.expr_of_string "R ++ R" in
  let key, rels = Cache.key ~engine:Veval.Tree ~mode:Opt.Off ~db e in
  Alcotest.(check bool) "miss on empty" true
    (Cache.find c ~key ~rels = None);
  Cache.add c ~key ~rels (Value.atom "v") (Ty.relation 1);
  (match Cache.find c ~key ~rels with
  | Some (v, _) ->
      Alcotest.(check bool) "hit returns the stored value" true
        (Value.equal v (Value.atom "v"))
  | None -> Alcotest.fail "expected a hit");
  (* a write to a referenced relation invalidates *)
  Cache.invalidate c "R";
  Alcotest.(check bool) "miss after invalidation" true
    (Cache.find c ~key ~rels = None);
  Alcotest.(check int) "entry dropped" 0 (Cache.length c);
  (* a write to an unreferenced relation does not *)
  Cache.add c ~key ~rels (Value.atom "v") (Ty.relation 1);
  Cache.invalidate c "G";
  Alcotest.(check bool) "unrelated invalidation keeps the entry" true
    (Cache.find c ~key ~rels <> None);
  (* the capacity bound evicts FIFO *)
  let add_query q =
    let e = Parser.expr_of_string q in
    let key, rels = Cache.key ~engine:Veval.Tree ~mode:Opt.Off ~db e in
    Cache.add c ~key ~rels (Value.atom q) (Ty.relation 1)
  in
  add_query "R /\\ R";
  add_query "R -- R";
  Alcotest.(check int) "capacity bound holds" 2 (Cache.length c)

let test_cache_key_discriminates () =
  let db = seed () in
  let e = Parser.expr_of_string "R ++ R" in
  let k1, _ = Cache.key ~engine:Veval.Tree ~mode:Opt.Off ~db e in
  let k2, _ = Cache.key ~engine:Veval.Vec ~mode:Opt.Off ~db e in
  let k3, _ = Cache.key ~engine:Veval.Tree ~mode:Opt.Cost ~db e in
  Alcotest.(check bool) "engine in the fingerprint" true (k1 <> k2);
  Alcotest.(check bool) "optimizer mode in the fingerprint" true (k1 <> k3);
  (* same query, different relation contents: different key *)
  let db' =
    List.map
      (fun (n, ty, v) ->
        if n = "R" then (n, ty, rel1_of [ "x"; "y" ]) else (n, ty, v))
      db
  in
  let k4, _ = Cache.key ~engine:Veval.Tree ~mode:Opt.Off ~db:db' e in
  Alcotest.(check bool) "relation contents in the fingerprint" true (k1 <> k4)

(* --- executor / admission -------------------------------------------------- *)

let ok_outcome = `Ok (Value.atom "done", Ty.relation 1)

let tc_query () = Derived.transitive_closure (Expr.lit graph (Ty.relation 2))

(* THE satellite regression: a queued request whose deadline is shorter
   than its queue wait must still complete, because its deadline clock
   arms at dequeue (Budget.arm on the worker), not at creation.  Before
   the create/arm split, the clock started at parse time and the request
   below came back with a spurious Deadline verdict. *)
let test_exec_deadline_vs_queue_wait () =
  let ex = Exec.create ~ceiling:10 ~max_queue:8 ~workers:1 () in
  let occupy () =
    let b = Budget.create Budget.unlimited in
    ignore
      (Exec.submit ex ~weight:10 ~budget:b ~run:(fun () ->
           Unix.sleepf 0.3;
           ok_outcome))
  in
  let t1 = Thread.create occupy () in
  Unix.sleepf 0.05 (* let the occupier take the whole ceiling *);
  let limits = { Budget.unlimited with Budget.deadline_s = Some 0.1 } in
  let b = Budget.create limits in
  let r =
    Exec.submit ex ~weight:10 ~budget:b ~run:(fun () ->
        match Eval.run ~budget:b (Eval.env_of_list []) (tc_query ()) with
        | Ok v -> `Ok (v, Ty.relation 2)
        | Error x -> `Verdict x)
  in
  (match r with
  | Ok (`Ok _, _) -> ()
  | Ok (`Verdict x, _) ->
      Alcotest.fail
        ("queue wait was billed against the deadline: "
        ^ Budget.exhaustion_to_string x)
  | Ok (`Fail m, _) | Error m -> Alcotest.fail m);
  Thread.join t1;
  (* counter-case: an account armed at creation (Budget.start) correctly
     pays for the same queue wait and trips its deadline *)
  let t2 = Thread.create occupy () in
  Unix.sleepf 0.05;
  let eager = Budget.start limits in
  let r2 =
    Exec.submit ex ~weight:10 ~budget:eager ~run:(fun () ->
        match Eval.run ~budget:eager (Eval.env_of_list []) (tc_query ()) with
        | Ok v -> `Ok (v, Ty.relation 2)
        | Error x -> `Verdict x)
  in
  (match r2 with
  | Ok (`Verdict x, _) when x.Budget.resource = Budget.Deadline -> ()
  | Ok (`Verdict x, _) ->
      Alcotest.fail ("wrong verdict: " ^ Budget.exhaustion_to_string x)
  | Ok (`Ok _, _) -> Alcotest.fail "armed-at-create must trip its deadline"
  | Ok (`Fail m, _) | Error m -> Alcotest.fail m);
  Thread.join t2;
  Exec.shutdown ex

let test_exec_ceiling () =
  let ex = Exec.create ~ceiling:10 ~max_queue:8 ~workers:4 () in
  (* a weight that can never fit is rejected, not queued forever *)
  (match
     Exec.submit ex ~weight:11
       ~budget:(Budget.create Budget.unlimited)
       ~run:(fun () -> ok_outcome)
   with
  | Error m -> Alcotest.(check bool) "names the ceiling" true (contains m "ceiling")
  | Ok _ -> Alcotest.fail "over-ceiling weight must be rejected");
  (* two weight-6 jobs cannot run concurrently under a ceiling of 10:
     with 4 idle workers, observed concurrency must still stay at 1 *)
  let running = Atomic.make 0 and peak = Atomic.make 0 in
  let rec bump_peak n =
    let p = Atomic.get peak in
    if n > p && not (Atomic.compare_and_set peak p n) then bump_peak n
  in
  let job () =
    let n = Atomic.fetch_and_add running 1 + 1 in
    bump_peak n;
    Unix.sleepf 0.05;
    ignore (Atomic.fetch_and_add running (-1));
    ok_outcome
  in
  let threads =
    List.init 3 (fun _ ->
        Thread.create
          (fun () ->
            match
              Exec.submit ex ~weight:6
                ~budget:(Budget.create Budget.unlimited)
                ~run:job
            with
            | Ok (`Ok _, _) -> ()
            | _ -> Alcotest.fail "weight-6 job must run")
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "aggregate fuel never above the ceiling" 1
    (Atomic.get peak);
  Alcotest.(check int) "fuel fully released" 0 (Exec.inflight ex);
  Exec.shutdown ex

let test_exec_queue_full () =
  let ex = Exec.create ~ceiling:1 ~max_queue:1 ~workers:1 () in
  let slow () =
    ignore
      (Exec.submit ex ~weight:1
         ~budget:(Budget.create Budget.unlimited)
         ~run:(fun () ->
           Unix.sleepf 0.2;
           ok_outcome))
  in
  let t1 = Thread.create slow () in
  Unix.sleepf 0.05;
  let t2 = Thread.create slow () in
  Unix.sleepf 0.05 (* t1 running, t2 queued: the queue is now full *);
  (match
     Exec.submit ex ~weight:1
       ~budget:(Budget.create Budget.unlimited)
       ~run:(fun () -> ok_outcome)
   with
  | Error m -> Alcotest.(check bool) "says queue full" true (contains m "queue")
  | Ok _ -> Alcotest.fail "third job must be rejected");
  Thread.join t1;
  Thread.join t2;
  Exec.shutdown ex

let test_exec_worker_death () =
  Fault.with_faults ~seed:1 "server.worker:n=1" (fun () ->
      let ex = Exec.create ~ceiling:100 ~max_queue:8 ~workers:1 () in
      (match
         Exec.submit ex ~weight:1
           ~budget:(Budget.create Budget.unlimited)
           ~run:(fun () -> ok_outcome)
       with
      | Error m ->
          Alcotest.(check bool) "structured death report" true
            (contains m "worker died")
      | Ok _ -> Alcotest.fail "the injected death must fail the job");
      (* the dying worker spawned its replacement: the queue keeps draining *)
      (match
         Exec.submit ex ~weight:1
           ~budget:(Budget.create Budget.unlimited)
           ~run:(fun () -> ok_outcome)
       with
      | Ok (`Ok _, _) -> ()
      | _ -> Alcotest.fail "respawned worker must serve the next job");
      Alcotest.(check int) "death counted" 1 (Exec.worker_deaths ex);
      Exec.shutdown ex)

(* --- the server, end to end ------------------------------------------------ *)

let with_server ?(tweak = fun c -> c) f =
  let cfg =
    tweak
      {
        Server.default_config with
        Server.port = 0;
        seed_db = seed ();
        workers = 2;
        engine = Veval.Tree;
        optimize = Opt.Off;
      }
  in
  match Server.start cfg with
  | Error msg -> Alcotest.fail ("server start: " ^ msg)
  | Ok sv -> Fun.protect ~finally:(fun () -> Server.stop sv) (fun () -> f sv)

let connect sv =
  match Client.connect ~host:"127.0.0.1" ~port:(Server.port sv) () with
  | Ok c -> c
  | Error m -> Alcotest.fail ("connect: " ^ m)

let req c cmd =
  match Client.request c cmd with
  | Ok r -> r
  | Error m -> Alcotest.fail (cmd ^ ": transport error: " ^ m)

(* what `balgd` must answer for `eval q`, computed without the server *)
let reference db q =
  let e = Parser.expr_of_string q in
  let ty = Typecheck.infer (Bagdb.type_env db) e in
  match Veval.run_engine Veval.Tree (Bagdb.value_env db) e with
  | Ok v -> Printf.sprintf "ok %s : %s" (Value.to_string v) (Ty.to_string ty)
  | Error x -> "verdict " ^ Budget.exhaustion_to_string x

let queries = [ "R ++ R"; "R /\\ R"; "R -- R"; "G * G"; "powerset(R)" ]

let test_server_roundtrip () =
  with_server (fun sv ->
      let c = connect sv in
      Alcotest.(check string) "ping" "ok pong" (req c "ping");
      Alcotest.(check string) "list" "ok R G" (req c "list");
      let db = seed () in
      List.iter
        (fun q ->
          Alcotest.(check string) q (reference db q) (req c ("eval " ^ q)))
        queries;
      Alcotest.(check bool) "parse errors are err parse" true
        (starts_with "err parse" (req c "eval R ++"));
      Alcotest.(check bool) "type errors are err type" true
        (starts_with "err type" (req c "eval Zebra"));
      Alcotest.(check bool) "unknown command is err proto" true
        (starts_with "err proto" (req c "frobnicate"));
      Alcotest.(check bool) "bad set is err proto" true
        (starts_with "err proto" (req c "set fuel=banana"));
      Alcotest.(check string) "set ok" "ok" (req c "set fuel=5");
      Alcotest.(check bool) "tiny fuel yields a verdict line" true
        (starts_with "verdict " (req c "eval powerset(G * G)"));
      Client.close c;
      Alcotest.(check bool) "sessions counted" true (Server.sessions_served sv >= 1))

let test_server_writes_and_cache () =
  with_server (fun sv ->
      let c = connect sv in
      Alcotest.(check string) "def" "ok defined S"
        (req c "def bag S : {{<U>}} = {{ <'z>:9 }}");
      Alcotest.(check string) "new bag evaluates" "ok {{<'z>:9}} : {{<U>}}"
        (req c "eval S");
      let r1 = req c "eval S ++ S" in
      Alcotest.(check string) "cached re-eval identical" r1 (req c "eval S ++ S");
      (* a write to S must invalidate the cached result *)
      Alcotest.(check string) "redef" "ok defined S"
        (req c "def bag S : {{<U>}} = {{ <'z> }}");
      Alcotest.(check string) "post-write eval sees the new contents"
        "ok {{<'z>:2}} : {{<U>}}" (req c "eval S ++ S");
      Alcotest.(check string) "drop" "ok dropped S" (req c "drop S");
      Alcotest.(check bool) "dropped bag is unbound" true
        (starts_with "err type" (req c "eval S"));
      Alcotest.(check bool) "drop of unknown bag is err db" true
        (starts_with "err db" (req c "drop S"));
      (* the "."-framed multi-line responses *)
      let metrics = req c "metrics" in
      Alcotest.(check bool) "metrics over the line protocol" true
        (contains metrics "balg_server_requests_total");
      (* the redef of S above invalidated its cached entry: the
         per-relation invalidation counter must be visible by name *)
      Alcotest.(check bool) "per-relation invalidation counter exported" true
        (contains metrics "balg_server_cache_rel_invalidations_total_S");
      Alcotest.(check bool) "dump renders the store" true
        (contains (req c "dump") "bag R : {{<U>}}");
      Client.close c)

let test_server_admission_rejects () =
  (* default_fuel far above the ceiling: every eval must be rejected with
     err busy — never evaluated past the ceiling *)
  with_server
    ~tweak:(fun c -> { c with Server.ceiling = 1000; default_fuel = 4_000_000 })
    (fun sv ->
      let c = connect sv in
      Alcotest.(check bool) "over-ceiling request is err busy" true
        (starts_with "err busy" (req c "eval R ++ R"));
      (* a session that lowers its fuel below the ceiling gets served *)
      Alcotest.(check string) "set fuel" "ok" (req c "set fuel=900");
      Alcotest.(check string) "fits under the ceiling now"
        (reference (seed ()) "R ++ R")
        (req c "eval R ++ R");
      Client.close c)

let test_server_http () =
  with_server (fun sv ->
      let c = connect sv in
      ignore (req c "eval R ++ R");
      Client.close c;
      (match Client.http_get ~host:"127.0.0.1" ~port:(Server.port sv) "/metrics" with
      | Ok body ->
          Alcotest.(check bool) "exposes server counters" true
            (contains body "balg_server_requests_total");
          Alcotest.(check bool) "exposes cache counters" true
            (contains body "balg_server_cache_misses_total")
      | Error m -> Alcotest.fail ("GET /metrics: " ^ m));
      (match Client.http_get ~host:"127.0.0.1" ~port:(Server.port sv) "/healthz" with
      | Ok body ->
          Alcotest.(check bool) "healthz says ok" true (contains body "ok");
          Alcotest.(check bool) "healthz reports replication lag" true
            (contains body "lag=");
          Alcotest.(check bool) "healthz reports the WAL size" true
            (contains body "wal_bytes=")
      | Error m -> Alcotest.fail ("GET /healthz: " ^ m));
      match Client.http_get ~host:"127.0.0.1" ~port:(Server.port sv) "/nope" with
      | Ok _ -> Alcotest.fail "unknown path must not be 200"
      | Error _ -> ())

let test_server_session_fault_isolated () =
  with_server (fun sv ->
      let c1 = connect sv in
      let c2 = connect sv in
      (* both sessions are live *)
      Alcotest.(check string) "c1 live" "ok pong" (req c1 "ping");
      Alcotest.(check string) "c2 live" "ok pong" (req c2 "ping");
      Fault.with_faults ~seed:1 "server.session:n=1" (fun () ->
          (match Client.request c1 "ping" with
          | Error _ -> () (* the injected death closed c1's socket *)
          | Ok r -> Alcotest.fail ("c1 must die, got: " ^ r));
          (* the blast radius is one session: c2 keeps working *)
          match Client.request c2 "ping" with
          | Ok r -> Alcotest.(check string) "c2 survives" "ok pong" r
          | Error m -> Alcotest.fail ("c2 must survive: " ^ m));
      Client.close c1;
      Client.close c2)

let test_server_persistence_across_restart () =
  let dir = temp_dir () in
  let dump_before = ref "" in
  with_server
    ~tweak:(fun c -> { c with Server.store_dir = Some dir })
    (fun sv ->
      let c = connect sv in
      Alcotest.(check string) "def" "ok defined S"
        (req c "def bag S : {{<U>}} = {{ <'z>:9 }}");
      Alcotest.(check string) "drop" "ok dropped G" (req c "drop G");
      dump_before := req c "dump";
      Client.close c);
  (* a second server over the same directory recovers the same state *)
  with_server
    ~tweak:(fun c -> { c with Server.store_dir = Some dir; seed_db = [] })
    (fun sv ->
      let c = connect sv in
      Alcotest.(check string) "state recovered byte-identical" !dump_before
        (req c "dump");
      Alcotest.(check string) "recovered bag evaluates"
        "ok {{<'z>:9}} : {{<U>}}" (req c "eval S");
      Client.close c)

(* --- client timeouts and retry policy --------------------------------------- *)

(* A listener that completes TCP handshakes (backlog) but never reads or
   writes: the client's connect succeeds, and only SO_RCVTIMEO can save a
   request from blocking forever. *)
let test_client_timeout () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen fd 4;
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      match Client.connect ~timeout_s:0.3 ~host:"127.0.0.1" ~port () with
      | Error m -> Alcotest.fail ("connect into the backlog: " ^ m)
      | Ok c ->
          let t0 = Unix.gettimeofday () in
          (match Client.request c "ping" with
          | Ok r -> Alcotest.fail ("a silent server answered: " ^ r)
          | Error _ ->
              Alcotest.(check bool) "timed out, not blocked" true
                (Unix.gettimeofday () -. t0 < 2.0));
          Client.close c)

let test_client_retry_policy () =
  (* deterministic jitter: the same attempt always gets the same delay,
     bounded by the cap and at least half the exponential step *)
  List.iter
    (fun k ->
      let d1 = Client.backoff_delay ~base_s:0.1 ~cap_s:5.0 ~attempt:k () in
      let d2 = Client.backoff_delay ~base_s:0.1 ~cap_s:5.0 ~attempt:k () in
      Alcotest.(check (float 0.0)) (Printf.sprintf "attempt %d replays" k) d1 d2;
      let step = Float.min 5.0 (0.1 *. (2. ** float_of_int (k - 1))) in
      Alcotest.(check bool) "within the jitter band" true
        (d1 >= (0.5 *. step) -. 1e-9 && d1 <= step +. 1e-9))
    [ 1; 2; 3; 7; 20 ];
  (* retrying: calls = attempts + 1, sleeps follow the backoff schedule *)
  let calls = ref 0 and slept = ref [] in
  (match
     Client.retrying ~attempts:3 ~base_s:0.1 ~cap_s:5.0
       ~sleep:(fun d -> slept := d :: !slept)
       (fun _ ->
         incr calls;
         Error "nope")
   with
  | Ok _ -> Alcotest.fail "must fail after the retry budget"
  | Error m -> Alcotest.(check string) "last error surfaces" "nope" m);
  Alcotest.(check int) "initial try + 3 retries" 4 !calls;
  Alcotest.(check (list (float 0.0))) "slept the schedule"
    (List.map
       (fun k -> Client.backoff_delay ~base_s:0.1 ~cap_s:5.0 ~attempt:k ())
       [ 3; 2; 1 ])
    !slept;
  (* first success stops the retries *)
  let calls = ref 0 in
  match
    Client.retrying ~attempts:5 ~sleep:(fun _ -> ())
      (fun k ->
        incr calls;
        if k >= 2 then Ok k else Error "warming up")
  with
  | Ok k ->
      Alcotest.(check int) "succeeded on attempt 2" 2 k;
      Alcotest.(check int) "stopped retrying after success" 3 !calls
  | Error m -> Alcotest.fail m

(* --- replication, end to end ------------------------------------------------ *)

(* Small params so tests converge fast: reconnects in tens of ms, a
   follower is "lost" after 3 straight failures, heartbeats every 50ms. *)
let test_repl_params =
  {
    Repl.backoff_min_s = 0.02;
    backoff_max_s = 0.2;
    lost_after = 3;
    read_timeout_s = 2.0;
    hb_interval_s = 0.05;
  }

let with_pair ?(primary_tweak = fun c -> c) ?(follower_tweak = fun c -> c) f =
  with_server
    ~tweak:(fun c ->
      primary_tweak { c with Server.repl_params = test_repl_params })
    (fun prim ->
      with_server
        ~tweak:(fun c ->
          follower_tweak
            {
              c with
              Server.seed_db = [];
              follow = Some ("127.0.0.1", Server.port prim);
              repl_params = test_repl_params;
            })
        (fun fol -> f prim fol))

let caught_up prim fol () =
  Store.log_seq (Server.store fol) = Store.log_seq (Server.store prim)
  && Store.log_seq (Server.store prim) > 0

let test_repl_catch_up () =
  with_pair (fun prim fol ->
      let c = connect prim in
      Alcotest.(check string) "write on the primary" "ok defined S"
        (req c "def bag S : {{<U>}} = {{ <'z>:9 }}");
      Alcotest.(check string) "and another" "ok dropped G" (req c "drop G");
      wait_until ~what:"follower catch-up" (caught_up prim fol);
      let cf = connect fol in
      Alcotest.(check string) "dumps bit-identical" (req c "dump")
        (req cf "dump");
      (* the follower serves reads from the replicated state... *)
      Alcotest.(check string) "replicated bag evaluates"
        "ok {{<'z>:9}} : {{<U>}}" (req cf "eval S");
      (* ...and refuses writes until promoted *)
      Alcotest.(check bool) "writes rejected as err readonly" true
        (starts_with "err readonly" (req cf "def bag X : {{<U>}} = {{ <'x> }}"));
      Alcotest.(check bool) "compact rejected too" true
        (starts_with "err readonly" (req cf "compact"));
      Alcotest.(check bool) "role says follower" true
        (starts_with "ok follower" (req cf "role"));
      Alcotest.(check bool) "role says primary" true
        (starts_with "ok primary" (req c "role"));
      (match
         Client.http_get ~host:"127.0.0.1" ~port:(Server.port fol) "/healthz"
       with
      | Ok body ->
          Alcotest.(check bool) "healthz reports the follower role" true
            (contains body "role=follower")
      | Error m -> Alcotest.fail ("follower healthz: " ^ m));
      Client.close cf;
      Client.close c)

(* A follower that bootstraps against a primary whose WAL was already
   compacted away can only arrive via the snapshot block. *)
let test_repl_snapshot_bootstrap () =
  with_pair
    ~primary_tweak:(fun c -> c)
    (fun prim fol ->
      let c = connect prim in
      Alcotest.(check string) "write" "ok defined S"
        (req c "def bag S : {{<U>}} = {{ <'s> }}");
      Alcotest.(check string) "compact folds the log" "ok compacted"
        (req c "compact");
      wait_until ~what:"snapshot bootstrap" (caught_up prim fol);
      let cf = connect fol in
      Alcotest.(check string) "bootstrapped dump identical" (req c "dump")
        (req cf "dump");
      Alcotest.(check bool) "a snapshot block was installed" true
        (contains (req cf "metrics") "balg_repl_snapshots_installed_total");
      Client.close cf;
      Client.close c)

let test_repl_promote () =
  with_pair (fun prim fol ->
      let c = connect prim in
      Alcotest.(check string) "write before failover" "ok defined S"
        (req c "def bag S : {{<U>}} = {{ <'s>:3 }}");
      wait_until ~what:"catch-up before failover" (caught_up prim fol);
      let dump_before = req c "dump" in
      Client.close c;
      (* the primary dies; a retrying writer aimed at the follower keeps
         failing with err readonly until the promotion lands *)
      Server.stop prim;
      let late = ref "" in
      let writer =
        Thread.create
          (fun () ->
            let r =
              Client.retrying ~attempts:40 ~base_s:0.02 ~cap_s:0.1 (fun _ ->
                  match
                    Client.connect ~host:"127.0.0.1" ~port:(Server.port fol) ()
                  with
                  | Error m -> Error m
                  | Ok c -> (
                      let r = Client.request c "def bag L : {{<U>}} = {{ <'l> }}" in
                      Client.close c;
                      match r with
                      | Ok reply when starts_with "ok" reply -> Ok reply
                      | Ok reply -> Error reply
                      | Error m -> Error m))
            in
            late := (match r with Ok r -> r | Error m -> "FAILED: " ^ m))
          ()
      in
      Unix.sleepf 0.05 (* let the writer taste err readonly first *);
      (match Server.promote fol with
      | `Promoted -> ()
      | `Already_primary -> Alcotest.fail "follower must report Promoted");
      Thread.join writer;
      Alcotest.(check string) "retrying writer survives the failover window"
        "ok defined L" !late;
      let cf = connect fol in
      Alcotest.(check bool) "role flipped" true
        (starts_with "ok primary" (req cf "role"));
      Alcotest.(check string) "promote is idempotent" "ok already primary"
        (req cf "promote");
      (* every pre-failover write survives on the new primary *)
      Alcotest.(check string) "replicated bag still evaluates"
        "ok {{<'s>:3}} : {{<U>}}" (req cf "eval S");
      Alcotest.(check bool) "pre-failover state carried over" true
        (contains dump_before "bag S");
      (match
         Client.http_get ~host:"127.0.0.1" ~port:(Server.port fol) "/healthz"
       with
      | Ok body ->
          Alcotest.(check bool) "healthz reports the new primary" true
            (contains body "role=primary")
      | Error m -> Alcotest.fail ("promoted healthz: " ^ m));
      Client.close cf)

(* Satellite (c), follower half: a follower whose primary is gone past
   the backoff horizon answers 503 so a load balancer stops routing to
   it. *)
let test_repl_follower_lost_healthz () =
  (* reserve a port with no listener behind it *)
  let dead_port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let p =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    in
    Unix.close fd;
    p
  in
  with_server
    ~tweak:(fun c ->
      {
        c with
        Server.seed_db = [];
        follow = Some ("127.0.0.1", dead_port);
        repl_params = test_repl_params;
      })
    (fun fol ->
      wait_until ~what:"healthz to degrade" (fun () ->
          match
            Client.http_get ~host:"127.0.0.1" ~port:(Server.port fol)
              "/healthz"
          with
          | Error m -> contains m "503"
          | Ok _ -> false);
      let cf = connect fol in
      Alcotest.(check bool) "role line reports lost" true
        (contains (req cf "role") "lost");
      Client.close cf)

(* Satellite (c), store half: a wal.append fault flips the store
   read-only, and health stops saying ok. *)
let test_server_readonly_healthz () =
  let dir = temp_dir () in
  with_server
    ~tweak:(fun c -> { c with Server.store_dir = Some dir })
    (fun sv ->
      let c = connect sv in
      (match
         Client.http_get ~host:"127.0.0.1" ~port:(Server.port sv) "/healthz"
       with
      | Ok body -> Alcotest.(check bool) "healthy first" true (contains body "ok")
      | Error m -> Alcotest.fail ("healthz before fault: " ^ m));
      Fault.with_faults ~seed:1 "wal.append:always" (fun () ->
          match Client.request c "def bag F : {{<U>}} = {{ <'f> }}" with
          | Ok reply ->
              Alcotest.(check bool) "write fails under the fault" true
                (starts_with "err wal" reply)
          | Error m -> Alcotest.fail ("transport during fault: " ^ m));
      (match
         Client.http_get ~host:"127.0.0.1" ~port:(Server.port sv) "/healthz"
       with
      | Ok body -> Alcotest.fail ("healthz still 200 after wal failure: " ^ body)
      | Error m -> Alcotest.(check bool) "healthz is 503" true (contains m "503"));
      Client.close c)

(* THE acceptance test: failover end to end with the replication fault
   sites armed.  Concurrent writers land acknowledged writes on the
   primary while repl.ship keeps cutting the feed and repl.connect keeps
   failing reconnects; the follower must still converge.  Then the
   primary dies, the follower is promoted, and every acknowledged write
   must be served by the new primary. *)
let test_repl_failover_differential () =
  Fault.with_faults ~seed:7 "repl.ship:p=0.05,repl.connect:p=0.05" (fun () ->
      with_pair (fun prim fol ->
          let writers = 4 and per_writer = 8 in
          let acked = Array.make writers [] in
          let errors = ref [] in
          let err_mu = Mutex.create () in
          let writer i =
            for j = 0 to per_writer - 1 do
              let name = Printf.sprintf "W%d_%d" i j in
              let cmd =
                Printf.sprintf "def bag %s : {{<U>}} = {{ <'w> }}" name
              in
              let r =
                Client.retrying ~attempts:8 ~base_s:0.01 ~cap_s:0.1 (fun _ ->
                    match
                      Client.connect ~host:"127.0.0.1"
                        ~port:(Server.port prim) ()
                    with
                    | Error m -> Error m
                    | Ok c -> (
                        let r = Client.request c cmd in
                        Client.close c;
                        match r with
                        | Ok reply when starts_with "ok" reply -> Ok reply
                        | Ok reply -> Error reply
                        | Error m -> Error m))
              in
              match r with
              | Ok _ -> acked.(i) <- name :: acked.(i)
              | Error m ->
                  Mutex.lock err_mu;
                  errors := Printf.sprintf "%s: %s" name m :: !errors;
                  Mutex.unlock err_mu
            done
          in
          let threads = List.init writers (fun i -> Thread.create writer i) in
          List.iter Thread.join threads;
          Alcotest.(check (list string)) "every write acknowledged" [] !errors;
          (* the follower converges despite the armed chaos *)
          wait_until ~timeout_s:20.0 ~what:"chaos catch-up" (caught_up prim fol);
          (* failover *)
          Server.stop prim;
          (match Server.promote fol with
          | `Promoted -> ()
          | `Already_primary -> Alcotest.fail "follower must promote");
          let cf = connect fol in
          Array.iter
            (List.iter (fun name ->
                 Alcotest.(check string)
                   (name ^ " survives the failover")
                   "ok {{<'w>}} : {{<U>}}"
                   (req cf ("eval " ^ name))))
            acked;
          (* the new primary accepts writes *)
          Alcotest.(check string) "new primary is writable" "ok defined AFTER"
            (req cf "def bag AFTER : {{<U>}} = {{ <'a> }}");
          Client.close cf))

(* The concurrent differential: N clients hammer the same query mix; every
   response must be bit-identical to direct library evaluation.  When
   BALG_FAULT is set (the CI chaos job), its spec is armed for the storm
   and a response may instead be a structured failure — an err line, a
   verdict, or a dead socket — but never a wrong answer, and the server
   must still answer cleanly once the faults are disarmed. *)
let test_server_concurrent_differential () =
  let chaos_spec = Sys.getenv_opt "BALG_FAULT" in
  let chaos_seed =
    Option.bind (Sys.getenv_opt "BALG_FAULT_SEED") int_of_string_opt
  in
  with_server
    ~tweak:(fun c -> { c with Server.workers = 3 })
    (fun sv ->
      let db = seed () in
      let expected = List.map (fun q -> (q, reference db q)) queries in
      let failures = Atomic.make 0 in
      let fail_msg = ref "" in
      let record msg =
        ignore (Atomic.fetch_and_add failures 1);
        fail_msg := msg
      in
      let client_thread i =
        let rec with_conn attempts k =
          match Client.connect ~host:"127.0.0.1" ~port:(Server.port sv) () with
          | Ok c -> k c
          | Error _ when chaos_spec <> None && attempts < 5 ->
              (* an injected accept fault dropped us: reconnect *)
              Unix.sleepf 0.01;
              with_conn (attempts + 1) k
          | Error m -> record (Printf.sprintf "client %d connect: %s" i m)
        in
        with_conn 0 @@ fun c ->
        let conn = ref c in
        for round = 0 to 2 do
          List.iter
            (fun (q, want) ->
              match Client.request !conn ("eval " ^ q) with
              | Ok got when String.equal got want -> ()
              | Ok got
                when chaos_spec <> None
                     && (starts_with "err " got || starts_with "verdict " got)
                ->
                  () (* structured failure under chaos: acceptable *)
              | Ok got ->
                  record
                    (Printf.sprintf "client %d round %d %s: got %s, want %s" i
                       round q got want)
              | Error _ when chaos_spec <> None ->
                  (* session killed under us: reconnect and carry on *)
                  with_conn 0 (fun c' -> conn := c')
              | Error m ->
                  record (Printf.sprintf "client %d round %d %s: %s" i round q m))
            expected
        done;
        Client.close !conn
      in
      let storm () =
        let threads = List.init 8 (fun i -> Thread.create client_thread i) in
        List.iter Thread.join threads
      in
      (match chaos_spec with
      | Some spec -> Fault.with_faults ?seed:chaos_seed spec storm
      | None -> storm ());
      Alcotest.(check string) "no differential failure" "" !fail_msg;
      Alcotest.(check int) "all clients clean" 0 (Atomic.get failures);
      (* faults disarmed: the server must answer cleanly again *)
      let c = connect sv in
      Alcotest.(check string) "healthy after the storm" "ok pong" (req c "ping");
      Client.close c)

(* End-to-end request tracing: with tracing enabled, a loaded server's
   event stream carries the whole request lifecycle — session spans on
   per-session lanes, retro-dated queue-wait spans, worker evaluation
   spans and WAL commit spans, all tagged with request ids — and every
   lane keeps the B/E stack discipline with monotone timestamps even
   with sessions preempting each other on domain 0's ring. *)
let test_server_traced_requests () =
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  with_server
    ~tweak:(fun c -> { c with Server.workers = 2 })
    (fun sv ->
      let threads =
        List.init 6 (fun i ->
            Thread.create
              (fun () ->
                let c = connect sv in
                (* distinct query texts: every client misses the cache
                   and reaches a worker through the admission queue *)
                let q =
                  "eval "
                  ^ String.concat " ++ " (List.init (i + 1) (fun _ -> "R"))
                in
                ignore (req c q);
                Client.close c)
              ())
      in
      List.iter Thread.join threads;
      let c = connect sv in
      Alcotest.(check string) "a write for the wal span" "ok defined T"
        (req c "def bag T : {{<U>}} = {{ <'t> }}");
      let t = req c "trace" in
      Alcotest.(check bool) "live trace over the wire" true
        (contains t "traceEvents");
      Client.close c);
  (* the server is stopped: sessions joined, workers drained, rings
     quiescent — read the whole run back *)
  let evs = Obs.events () in
  List.iter
    (fun cat ->
      Alcotest.(check bool) ("category " ^ cat ^ " present") true
        (List.exists (fun e -> String.equal e.Obs.cat cat) evs))
    [ "session"; "queue"; "worker"; "wal"; "eval" ];
  Alcotest.(check bool) "request ids attached" true
    (List.exists
       (fun e ->
         String.equal e.Obs.cat "session"
         && List.mem_assoc "req" e.Obs.args)
       evs);
  Alcotest.(check bool) "session lanes used" true
    (List.exists (fun e -> e.Obs.tid >= Obs.lane_session 0) evs);
  (* per-lane stack discipline and monotonicity, faults included *)
  let depth = Hashtbl.create 8 and last = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let lane = (e.Obs.pid, e.Obs.tid) in
      (match Hashtbl.find_opt last lane with
      | Some ts when e.Obs.ts < ts ->
          Alcotest.failf "lane %d:%d time went backwards" e.Obs.pid e.Obs.tid
      | _ -> ());
      Hashtbl.replace last lane e.Obs.ts;
      let d =
        match Hashtbl.find_opt depth lane with Some d -> d | None -> 0
      in
      match e.Obs.ph with
      | Obs.B -> Hashtbl.replace depth lane (d + 1)
      | Obs.E ->
          if d <= 0 then
            Alcotest.failf "lane %d:%d: E without B" e.Obs.pid e.Obs.tid;
          Hashtbl.replace depth lane (d - 1)
      | Obs.I -> ())
    evs;
  Hashtbl.iter
    (fun (pid, tid) d ->
      if d <> 0 then Alcotest.failf "lane %d:%d ends at depth %d" pid tid d)
    depth

let () =
  Alcotest.run "server"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "bit flip" `Quick test_frame_bit_flip;
          Alcotest.test_case "torn" `Quick test_frame_torn;
        ] );
      ( "store",
        [
          Alcotest.test_case "cow snapshots" `Quick test_store_cow;
          Alcotest.test_case "wal roundtrip" `Quick test_store_wal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_store_torn_tail;
          Alcotest.test_case "crc bit flip mid-log" `Quick
            test_store_crc_bit_flip;
          Alcotest.test_case "wal.append fault" `Quick
            test_store_wal_append_fault;
          Alcotest.test_case "compaction" `Quick test_store_compact;
          Alcotest.test_case "replication api" `Quick
            test_store_replication_api;
        ] );
      ( "client",
        [
          Alcotest.test_case "timeout" `Quick test_client_timeout;
          Alcotest.test_case "retry policy" `Quick test_client_retry_policy;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss/invalidate" `Quick test_cache_basics;
          Alcotest.test_case "key discriminates" `Quick
            test_cache_key_discriminates;
        ] );
      ( "exec",
        [
          Alcotest.test_case "deadline vs queue wait" `Quick
            test_exec_deadline_vs_queue_wait;
          Alcotest.test_case "ceiling" `Quick test_exec_ceiling;
          Alcotest.test_case "queue full" `Quick test_exec_queue_full;
          Alcotest.test_case "worker death" `Quick test_exec_worker_death;
        ] );
      ( "server",
        [
          Alcotest.test_case "protocol roundtrip" `Quick test_server_roundtrip;
          Alcotest.test_case "writes and cache" `Quick
            test_server_writes_and_cache;
          Alcotest.test_case "admission rejects" `Quick
            test_server_admission_rejects;
          Alcotest.test_case "http endpoints" `Quick test_server_http;
          Alcotest.test_case "session fault isolated" `Quick
            test_server_session_fault_isolated;
          Alcotest.test_case "persistence across restart" `Quick
            test_server_persistence_across_restart;
          Alcotest.test_case "readonly healthz" `Quick
            test_server_readonly_healthz;
          Alcotest.test_case "traced requests" `Quick
            test_server_traced_requests;
          Alcotest.test_case "concurrent differential" `Quick
            test_server_concurrent_differential;
        ] );
      ( "repl",
        [
          Alcotest.test_case "catch-up" `Quick test_repl_catch_up;
          Alcotest.test_case "snapshot bootstrap" `Quick
            test_repl_snapshot_bootstrap;
          Alcotest.test_case "promote" `Quick test_repl_promote;
          Alcotest.test_case "follower lost healthz" `Quick
            test_repl_follower_lost_healthz;
          Alcotest.test_case "failover differential" `Quick
            test_repl_failover_differential;
        ] );
    ]
