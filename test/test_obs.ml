(* Golden tests for the observability layer: the metrics registry
   (counters / gauges / log-bucketed histograms / Prometheus snapshot) and
   the trace-event core (per-domain rings, drop-oldest overflow, exporters)
   plus the evaluator integration invariants the exported traces promise:

     - every B event has a matching E in its tid lane (stack discipline),
       on success, exhaustion, cancellation and injected faults alike;
     - timestamps are non-decreasing within a tid;
     - the sum of "steps" over eval end events equals the governor's
       spent fuel, sequentially and across a 4-domain pool;
     - a failed run's trace still ends with a "done" instant carrying
       the verdict.

   Tracing is global state, so every test brackets with enable/disable. *)

open Balg

let jobs =
  match Sys.getenv_opt "BALG_TEST_JOBS" with
  | Some s -> ( try max 2 (int_of_string s) with _ -> 4)
  | None -> 4

let with_obs ?capacity f =
  Obs.enable ?capacity ();
  Fun.protect ~finally:Obs.disable f

let with_test_pool f =
  let p = Pool.create ~chunk_min:1 ~fork_min:1 ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let rng = Random.State.make [| 20260806 |]
let binary20 = Baggen.Genval.flat_bag rng ~n_atoms:6 ~arity:2 ~size:20 ~max_count:3
let graph8 = Baggen.Genval.graph rng ~n:8 ~p:0.3
let selfjoin_q = Derived.selfjoin (Expr.lit binary20 (Ty.relation 2))
let tc_q = Derived.transitive_closure (Expr.lit graph8 (Ty.relation 2))
let env0 = Eval.env_of_list []

(* --- metrics -------------------------------------------------------------- *)

let test_counter () =
  let r = Metrics.create () in
  let c = Metrics.counter r "reqs_total" ~help:"requests" in
  Alcotest.(check int) "starts at 0" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "1 + 41" 42 (Metrics.counter_value c);
  (* registration is idempotent: same name, same instrument *)
  Metrics.incr (Metrics.counter r "reqs_total");
  Alcotest.(check int) "same underlying cell" 43 (Metrics.counter_value c);
  Alcotest.(check_raises) "kind mismatch rejected"
    (Invalid_argument "Metrics.gauge: reqs_total is not a gauge")
    (fun () -> ignore (Metrics.gauge r "reqs_total"))

let test_gauge () =
  let r = Metrics.create () in
  let g = Metrics.gauge r "live" in
  Metrics.set_gauge g 4.;
  Alcotest.(check (float 0.0)) "set/read" 4. (Metrics.gauge_value g)

let test_histogram_percentiles () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "lat_ns" in
  (* values below 16 land in exact buckets: percentiles are exact *)
  List.iter (Metrics.observe h) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  Alcotest.(check int) "count" 10 (Metrics.hist_count h);
  Alcotest.(check int) "sum" 55 (Metrics.hist_sum h);
  Alcotest.(check (float 0.0)) "p50 exact" 5. (Metrics.percentile h 0.50);
  Alcotest.(check (float 0.0)) "p90 exact" 9. (Metrics.percentile h 0.90);
  Alcotest.(check (float 0.0)) "p99 exact" 10. (Metrics.percentile h 0.99);
  (* large values: the bucket upper bound bounds the observation from
     above within the ~12.5% octave resolution, and quantiles are
     monotone in q *)
  let h2 = Metrics.histogram r "big_ns" in
  List.iter (Metrics.observe h2) [ 1_000; 10_000; 100_000; 1_000_000 ];
  let p50 = Metrics.percentile h2 0.50
  and p90 = Metrics.percentile h2 0.90
  and p99 = Metrics.percentile h2 0.99 in
  Alcotest.(check bool) "p50 <= p90 <= p99" true (p50 <= p90 && p90 <= p99);
  Alcotest.(check bool) "p50 covers its rank" true
    (p50 >= 10_000. && p50 <= 10_000. *. 1.125);
  Alcotest.(check bool) "p99 covers the max" true
    (p99 >= 1_000_000. && p99 <= 1_000_000. *. 1.125);
  Metrics.observe h2 (-5);
  Alcotest.(check bool) "negative clamps to 0" true
    (Metrics.hist_count h2 = 5 && Metrics.percentile h2 0.01 = 0.)

let test_histogram_merge () =
  let r = Metrics.create () in
  let a = Metrics.histogram r "a" and b = Metrics.histogram r "b" in
  List.iter (Metrics.observe a) [ 1; 2; 3 ];
  List.iter (Metrics.observe b) [ 7; 8; 9 ];
  Metrics.merge_histogram ~into:a b;
  Alcotest.(check int) "merged count" 6 (Metrics.hist_count a);
  Alcotest.(check int) "merged sum" 30 (Metrics.hist_sum a);
  Alcotest.(check (float 0.0)) "merged p99" 9. (Metrics.percentile a 0.99)

let test_prometheus_snapshot () =
  let r = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter r "zz_total" ~help:"a counter");
  Metrics.set_gauge (Metrics.gauge r "aa_live") 2.;
  let h = Metrics.histogram r "mm_ns" ~help:"a histogram" in
  List.iter (Metrics.observe h) [ 5; 5; 12 ];
  let s = Metrics.to_prometheus r in
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub -> Alcotest.(check bool) ("snapshot has " ^ sub) true (has sub))
    [
      "# HELP zz_total a counter";
      "# TYPE zz_total counter";
      "zz_total 3";
      "aa_live 2";
      "# TYPE mm_ns histogram";
      "mm_ns_bucket{le=\"5\"} 2";
      "mm_ns_bucket{le=\"+Inf\"} 3";
      "mm_ns_sum 22";
      "mm_ns_count 3";
      "# percentiles mm_ns p50=5 p90=12 p99=12";
    ];
  (* name-sorted: the gauge (aa_) prints before the histogram (mm_) and
     the counter (zz_) *)
  let pos sub =
    let n = String.length s and m = String.length sub in
    let rec go i = if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "sorted by name" true
    (pos "aa_live" < pos "mm_ns_sum" && pos "mm_ns_sum" < pos "zz_total");
  Metrics.reset r;
  Alcotest.(check int) "reset zeroes histograms" 0 (Metrics.hist_count h)

(* --- the event core ------------------------------------------------------- *)

let test_disabled_no_events () =
  Obs.disable ();
  Alcotest.(check bool) "off" false (Obs.on ());
  if Obs.on () then Obs.emit Obs.I ~cat:"t" ~name:"x";
  Alcotest.(check int) "nothing captured" 0 (List.length (Obs.events ()))

let test_capture_order_and_ids () =
  with_obs (fun () ->
      Obs.set_trace_id 7;
      if Obs.on () then Obs.emit Obs.B ~cat:"t" ~name:"a";
      if Obs.on () then Obs.emit Obs.I ~cat:"t" ~name:"b" ~args:[ ("k", Obs.Int 1) ];
      if Obs.on () then Obs.emit Obs.E ~cat:"t" ~name:"a";
      match Obs.events () with
      | [ e1; e2; e3 ] ->
          Alcotest.(check (list string)) "order" [ "a"; "b"; "a" ]
            [ e1.Obs.name; e2.Obs.name; e3.Obs.name ];
          Alcotest.(check int) "trace id on pid" 7 e2.Obs.pid;
          Alcotest.(check bool) "ts monotone" true
            (e1.Obs.ts <= e2.Obs.ts && e2.Obs.ts <= e3.Obs.ts)
      | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs))

let test_ring_overflow_drops_oldest () =
  with_obs ~capacity:64 (fun () ->
      for i = 1 to 100 do
        if Obs.on () then Obs.emit Obs.I ~cat:"t" ~name:(string_of_int i)
      done;
      let evs = Obs.events () in
      Alcotest.(check int) "ring keeps capacity" 64 (List.length evs);
      Alcotest.(check int) "dropped counted" 36 (Obs.dropped ());
      Alcotest.(check string) "oldest dropped, newest kept" "100"
        (List.nth evs 63).Obs.name;
      Alcotest.(check string) "window starts after the drop" "37"
        (List.hd evs).Obs.name)

let test_cross_domain_rings () =
  with_obs (fun () ->
      if Obs.on () then Obs.emit Obs.I ~cat:"t" ~name:"main";
      let ds =
        List.init 3 (fun i ->
            Domain.spawn (fun () ->
                if Obs.on () then Obs.emit Obs.B ~cat:"t" ~name:("w" ^ string_of_int i);
                if Obs.on () then Obs.emit Obs.E ~cat:"t" ~name:("w" ^ string_of_int i)))
      in
      List.iter Domain.join ds;
      let evs = Obs.events () in
      Alcotest.(check int) "all domains exported" 7 (List.length evs);
      let tids = List.sort_uniq compare (List.map (fun e -> e.Obs.tid) evs) in
      Alcotest.(check bool) "several tids" true (List.length tids = 4);
      Alcotest.(check bool) "grouped by ascending tid" true
        (List.map (fun e -> e.Obs.tid) evs = List.sort compare (List.map (fun e -> e.Obs.tid) evs)))

let test_exporter_shapes () =
  with_obs (fun () ->
      Obs.set_trace_id 1;
      if Obs.on () then Obs.emit Obs.B ~cat:"t" ~name:"sp\"an" ~args:[ ("s", Obs.Str "a\nb") ];
      if Obs.on () then Obs.emit Obs.E ~cat:"t" ~name:"sp\"an" ~args:[ ("f", Obs.Float 1.5) ];
      let chrome = Obs.Trace.to_chrome_json () in
      let has sub s =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "chrome header" true
        (has "{\"traceEvents\":[" chrome);
      Alcotest.(check bool) "thread metadata" true (has "thread_name" chrome);
      Alcotest.(check bool) "escaped name" true (has "sp\\\"an" chrome);
      Alcotest.(check bool) "drop count" true (has "\"droppedEvents\":0" chrome);
      let jsonl = Obs.Log.to_jsonl_string () in
      let lines = String.split_on_char '\n' (String.trim jsonl) in
      Alcotest.(check int) "one line per event" 2 (List.length lines);
      Alcotest.(check bool) "escaped newline in arg" true (has "a\\nb" jsonl))

(* --- evaluator trace invariants ------------------------------------------- *)

(* Walk the exported events with one span stack per tid: B pushes, E must
   match the top's name, I is free; every stack must end empty. *)
let check_balanced evs =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let last : (int, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let tid = e.Obs.tid in
      (match Hashtbl.find_opt last tid with
      | Some t when e.Obs.ts < t ->
          Alcotest.failf "tid %d: ts went backwards (%f after %f)" tid e.Obs.ts t
      | _ -> ());
      Hashtbl.replace last tid e.Obs.ts;
      let stack = Option.value (Hashtbl.find_opt stacks tid) ~default:[] in
      match e.Obs.ph with
      | Obs.B -> Hashtbl.replace stacks tid (e.Obs.name :: stack)
      | Obs.I -> ()
      | Obs.E -> (
          match stack with
          | top :: rest ->
              Alcotest.(check string)
                (Printf.sprintf "tid %d: E matches innermost B" tid)
                top e.Obs.name;
              Hashtbl.replace stacks tid rest
          | [] -> Alcotest.failf "tid %d: E %s without open B" tid e.Obs.name))
    evs;
  Hashtbl.iter
    (fun tid stack ->
      if stack <> [] then
        Alcotest.failf "tid %d: %d spans left open" tid (List.length stack))
    stacks

let sum_eval_steps evs =
  List.fold_left
    (fun acc e ->
      if e.Obs.ph = Obs.E && e.Obs.cat = "eval" then
        match List.assoc_opt "steps" e.Obs.args with
        | Some (Obs.Int n) -> acc + n
        | _ -> acc
      else acc)
    0 evs

let done_instant evs =
  match
    List.filter (fun e -> e.Obs.ph = Obs.I && e.Obs.name = "done") evs
  with
  | [ e ] -> e
  | l -> Alcotest.failf "expected exactly one done instant, got %d" (List.length l)

let run_traced ?pool ?budget e =
  let budget = match budget with Some b -> b | None -> Budget.start Budget.default in
  let r = Eval.run ~budget ?pool env0 e in
  (r, budget, Obs.events ())

let test_trace_steps_equal_fuel_seq () =
  with_obs (fun () ->
      let r, budget, evs = run_traced tc_q in
      Alcotest.(check bool) "run succeeded" true (Result.is_ok r);
      check_balanced evs;
      Alcotest.(check int) "sum of span steps == spent fuel"
        (Budget.fuel_spent budget) (sum_eval_steps evs);
      match List.assoc_opt "fuel" (done_instant evs).Obs.args with
      | Some (Obs.Int f) ->
          Alcotest.(check int) "done fuel agrees" (Budget.fuel_spent budget) f
      | _ -> Alcotest.fail "done instant lacks fuel")

let test_trace_steps_equal_fuel_parallel () =
  with_test_pool (fun pool ->
      with_obs (fun () ->
          let r, budget, evs = run_traced ~pool selfjoin_q in
          Alcotest.(check bool) "run succeeded" true (Result.is_ok r);
          check_balanced evs;
          Alcotest.(check int) "steps == fuel across domains"
            (Budget.fuel_spent budget) (sum_eval_steps evs)))

let test_trace_faulted_run () =
  Fault.with_faults ~seed:3 "eval.step:n=5" (fun () ->
      with_obs (fun () ->
          let r, budget, evs = run_traced selfjoin_q in
          (match r with
          | Error x ->
              Alcotest.(check string) "injected verdict" "injected-fault"
                (Budget.resource_to_string x.Budget.resource)
          | Ok _ -> Alcotest.fail "fault did not fire");
          check_balanced evs;
          Alcotest.(check int) "steps == fuel on the unwind path"
            (Budget.fuel_spent budget) (sum_eval_steps evs);
          match List.assoc_opt "outcome" (done_instant evs).Obs.args with
          | Some (Obs.Str "verdict") -> ()
          | _ -> Alcotest.fail "faulted trace must end in a verdict instant"))

let test_trace_cancelled_run () =
  with_obs (fun () ->
      let budget = Budget.start Budget.default in
      Budget.cancel budget;
      let r, _, evs = run_traced ~budget selfjoin_q in
      (match r with
      | Error x ->
          Alcotest.(check bool) "cancelled verdict" true
            (x.Budget.resource = Budget.Cancelled)
      | Ok _ -> Alcotest.fail "cancelled budget still produced a value");
      check_balanced evs;
      match List.assoc_opt "resource" (done_instant evs).Obs.args with
      | Some (Obs.Str s) ->
          Alcotest.(check string) "verdict instant names the resource"
            (Budget.resource_to_string Budget.Cancelled) s
      | _ -> Alcotest.fail "cancelled trace must end in a verdict instant")

let test_trace_exhausted_run () =
  with_obs (fun () ->
      let budget = Budget.start { Budget.default with Budget.fuel = 10 } in
      let r, budget, evs = run_traced ~budget tc_q in
      Alcotest.(check bool) "exhausted" true (Result.is_error r);
      check_balanced evs;
      Alcotest.(check int) "steps == fuel at exhaustion"
        (Budget.fuel_spent budget) (sum_eval_steps evs);
      Alcotest.(check bool) "budget instant recorded" true
        (List.exists (fun e -> e.Obs.cat = "budget") evs))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "prometheus snapshot" `Quick
            test_prometheus_snapshot;
        ] );
      ( "event core",
        [
          Alcotest.test_case "disabled captures nothing" `Quick
            test_disabled_no_events;
          Alcotest.test_case "capture order and ids" `Quick
            test_capture_order_and_ids;
          Alcotest.test_case "overflow drops oldest" `Quick
            test_ring_overflow_drops_oldest;
          Alcotest.test_case "cross-domain rings" `Quick
            test_cross_domain_rings;
          Alcotest.test_case "exporter shapes" `Quick test_exporter_shapes;
        ] );
      ( "trace invariants",
        [
          Alcotest.test_case "steps == fuel (sequential)" `Quick
            test_trace_steps_equal_fuel_seq;
          Alcotest.test_case "steps == fuel (4 domains)" `Quick
            test_trace_steps_equal_fuel_parallel;
          Alcotest.test_case "faulted run" `Quick test_trace_faulted_run;
          Alcotest.test_case "cancelled run" `Quick test_trace_cancelled_run;
          Alcotest.test_case "exhausted run" `Quick test_trace_exhausted_run;
        ] );
    ]
